//! Hot-path auditor: panic-freedom and allocation-discipline lints
//! (`H0xx`) over the serving engine's steady-state decode path.
//!
//! The determinism auditor (`crate::det`) proves runs are bit-reproducible
//! and the parallel auditor (`crate::par`) proves multi-core runs match;
//! this module polices a different axis: **liveness under load**. The
//! serving loop (`serve::engine` tick → `nn::batch` packed step → tensor
//! kernels) must neither panic on a bookkeeping divergence — a panic
//! aborts every in-flight request — nor allocate per tick, which caps
//! throughput at the allocator instead of the hardware.
//!
//! Unlike det/par, which sweep the whole workspace, this auditor runs
//! over an explicit **hot-path manifest** ([`HOT_MANIFEST`]): the files
//! that execute per serve tick, each with the set of *tick functions*
//! whose bodies form the steady state. Two scopes follow:
//!
//! * **file scope** (everything outside `#[cfg(test)]`): panics hidden
//!   behind `unwrap`/`expect` are a liability anywhere on the hot path —
//!   H001 fires file-wide.
//! * **tick scope** (the bodies of the manifest's tick functions):
//!   panic-family macros, unchecked indexing, heap allocation, and
//!   fallible casts are only forbidden where they run once per decoded
//!   token — H002–H005 fire there.
//!
//! | code | scope | finding |
//! |------|-------|---------|
//! | H000 | file  | `hot-ok` allowlist annotation without a reason |
//! | H001 | file  | `.unwrap()` / `.expect()` in hot-path non-test code |
//! | H002 | tick  | `panic!`/`unreachable!`/`assert!`-family macro in a steady-state tick function |
//! | H003 | tick  | direct slice indexing where a checked accessor exists |
//! | H004 | tick  | heap allocation per tick (`vec!`, `format!`, `collect`, `clone`, `to_vec`, `::new`/`::with_capacity` of a container) |
//! | H005 | tick  | fallible `as` cast feeding a capacity/length sink or a slice index |
//! | H009 | file  | stale `hot-ok` annotation that no longer matches any finding |
//!
//! Suppressions are `// hot-ok: <reason>` on the finding's line or the
//! line above; a reason is mandatory (H000) and unmatched annotations rot
//! loudly (H009). The static layer is paired with a dynamic witness: the
//! counting-allocator test (`crates/serve/tests/zero_alloc.rs`) runs the
//! real engine to steady state and certifies **zero** allocations per
//! decode tick, so a `hot-ok: warm-up only` claim on an H004 site is
//! checked at runtime, not just asserted in a comment.

use std::fmt;
use std::path::Path;

use crate::det::SourceFinding;
use crate::lexer::{drop_test_modules_spanned, is_ident, strip_and_lex};
use crate::suppress::Suppressions;

/// One manifest entry: a hot-path source file and the names of its
/// steady-state tick functions (bodies get the tick-scope lints).
#[derive(Debug, Clone, Copy)]
pub struct HotFile {
    /// Workspace-relative path, as `lexer::workspace_sources` reports it.
    pub file: &'static str,
    /// Functions whose bodies execute once per decode tick.
    pub tick_fns: &'static [&'static str],
}

/// The hot-path manifest: every file that executes per serve tick.
///
/// `serve::testing::ScriptedDecoder` is deliberately absent — it is a
/// test double that trades allocation for scriptability and never serves
/// traffic. Renaming or moving a manifest file fails the audit loudly
/// (the file read errors) instead of silently shrinking coverage.
pub const HOT_MANIFEST: &[HotFile] = &[
    HotFile {
        file: "crates/serve/src/engine.rs",
        tick_fns: &["tick", "tick_inner", "take_flight"],
    },
    HotFile {
        file: "crates/serve/src/queue.rs",
        tick_fns: &["pop", "expire"],
    },
    HotFile {
        file: "crates/nn/src/batch.rs",
        tick_fns: &["step_packed", "step_packed_into", "linear_packed"],
    },
    HotFile {
        file: "crates/nn/src/decode.rs",
        tick_fns: &["batched_decode_loop"],
    },
    HotFile {
        file: "crates/nn/src/prefix_cache.rs",
        tick_fns: &[],
    },
    HotFile {
        file: "crates/tensor/src/kernels.rs",
        tick_fns: &["mm_nn", "mm_nt", "softmax_rows"],
    },
];

/// Tally of hot-path findings across a whole audit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HotCounts {
    pub files: usize,
    pub suppressed: usize,
    pub h000: usize,
    pub h001: usize,
    pub h002: usize,
    pub h003: usize,
    pub h004: usize,
    pub h005: usize,
    /// Stale `hot-ok` annotations (allowlist rot).
    pub h009: usize,
}

impl HotCounts {
    /// Records one source finding (suppressed findings count separately).
    pub fn record(&mut self, finding: &SourceFinding) {
        if finding.suppressed.is_some() {
            self.suppressed += 1;
            return;
        }
        match finding.code {
            "H000" => self.h000 += 1,
            "H001" => self.h001 += 1,
            "H002" => self.h002 += 1,
            "H003" => self.h003 += 1,
            "H004" => self.h004 += 1,
            "H005" => self.h005 += 1,
            "H009" => self.h009 += 1,
            other => panic!("unknown hot-path code {other}"),
        }
    }

    /// Findings that fail the audit (suppressed ones do not).
    pub fn unsuppressed(&self) -> usize {
        self.h000 + self.h001 + self.h002 + self.h003 + self.h004 + self.h005 + self.h009
    }
}

impl fmt::Display for HotCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} files | H001:{} H002:{} H003:{} H004:{} H005:{} H009:{} | \
             {} allowed (hot-ok), {} unreasoned (H000)",
            self.files,
            self.h001,
            self.h002,
            self.h003,
            self.h004,
            self.h005,
            self.h009,
            self.suppressed,
            self.h000,
        )
    }
}

/// Panic-family macros forbidden in tick scope (H002). `debug_assert*`
/// is deliberately absent: it compiles out of release builds, which is
/// exactly the sanctioned way to keep invariant teeth without a
/// production abort path.
const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Method calls that heap-allocate (H004) when they appear per tick.
const ALLOC_METHODS: &[&str] = &["collect", "to_vec", "to_string", "to_owned", "clone"];

/// Container types whose `::new` / `::with_capacity` allocate (H004).
/// `with_capacity` counts too: *per-tick* capacity reservation is still a
/// per-tick allocation — reserve at admission and reuse.
const ALLOC_CONTAINERS: &[&str] = &[
    "Vec", "String", "Box", "VecDeque", "BTreeMap", "BTreeSet", "HashMap", "HashSet", "Rc", "Arc",
];

/// Capacity/length sinks whose arguments must not contain fallible casts
/// (H005): a truncated cast here silently corrupts buffer sizing.
const CAPACITY_SINKS: &[&str] = &[
    "with_capacity",
    "resize",
    "reserve",
    "reserve_exact",
    "truncate",
    "set_len",
];

/// Cast targets that narrow on a 64-bit host (H005 in index brackets).
/// `as usize` is excluded: widening from the u32 token ids the decode
/// path carries cannot truncate there.
const NARROWING_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// Body token ranges `(start_brace, end_brace, fn_name)` of the manifest
/// tick functions. Trait method *declarations* (ending in `;`) have no
/// body and are skipped; same-named test helpers are gone before this
/// runs because the caller drops `#[cfg(test)]` modules first.
fn tick_fn_ranges<'a>(texts: &[&str], tick_fns: &[&'a str]) -> Vec<(usize, usize, &'a str)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < texts.len() {
        if texts[i] != "fn" {
            i += 1;
            continue;
        }
        let name = texts.get(i + 1).copied().unwrap_or("");
        let mut j = i + 1;
        while j < texts.len() && texts[j] != "{" && texts[j] != ";" {
            j += 1;
        }
        if j >= texts.len() || texts[j] == ";" {
            i = j + 1;
            continue;
        }
        let body_start = j;
        let mut depth = 0i32;
        while j < texts.len() {
            match texts[j] {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let body_end = j;
        if let Some(tick) = tick_fns.iter().find(|t| **t == name) {
            ranges.push((body_start, body_end, *tick));
        }
        i = body_end + 1;
    }
    ranges
}

/// One `ident[…]` index site: the receiver token index and the bracket
/// content range, plus what the content looks like.
struct IndexSite {
    recv: usize,
    content: (usize, usize),
    is_range: bool,
    is_literal: bool,
}

/// Collects every `ident[…]` site. Attribute brackets (`#[…]`), array
/// types/literals (`[f32; 4]`), and macro brackets (`vec![…]`) never
/// match: their `[` does not follow a plain identifier.
fn index_sites(texts: &[&str]) -> Vec<IndexSite> {
    let mut sites = Vec::new();
    for i in 0..texts.len() {
        if !is_ident(texts[i]) || texts.get(i + 1) != Some(&"[") {
            continue;
        }
        let mut depth = 0i32;
        let mut j = i + 1;
        while j < texts.len() {
            match texts[j] {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let content = (i + 2, j);
        let inner = &texts[content.0..content.1.min(texts.len())];
        sites.push(IndexSite {
            recv: i,
            content,
            is_range: inner.iter().any(|t| *t == ".." || *t == "..="),
            is_literal: inner.len() == 1 && inner[0].bytes().all(|b| b.is_ascii_digit()),
        });
    }
    sites
}

/// Argument-paren ranges of capacity-sink calls (`resize(…)` etc.).
fn sink_arg_ranges(texts: &[&str]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    for i in 0..texts.len() {
        if !CAPACITY_SINKS.contains(&texts[i]) || texts.get(i + 1) != Some(&"(") {
            continue;
        }
        let mut depth = 0i32;
        let mut j = i + 1;
        while j < texts.len() {
            match texts[j] {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        ranges.push((i + 2, j));
    }
    ranges
}

/// Scans one hot-path file. `tick_fns` names the steady-state functions
/// whose bodies get the tick-scope lints (H002–H005); H001 and the
/// suppression hygiene codes apply file-wide.
pub fn scan_hot_source(file: &str, text: &str, tick_fns: &[&str]) -> Vec<SourceFinding> {
    let stripped = strip_and_lex(text);
    let mut supp = Suppressions::from_stripped(&stripped, "hot-ok");
    let (toks, test_spans) = drop_test_modules_spanned(stripped.tokens);
    supp.discard_lines_in(&test_spans);
    let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();

    let mut findings = Vec::new();

    // H000: allowlist annotations must carry a reason.
    for line in supp.missing_reason_lines() {
        findings.push(SourceFinding {
            code: "H000",
            file: file.to_string(),
            line,
            message: "hot-ok annotation without a reason; write `hot-ok: <why this site \
                      cannot panic or allocate per tick>`"
                .to_string(),
            suppressed: None,
        });
    }

    let mut push = |code: &'static str, line: usize, message: String| {
        let suppressed = supp.consume(line);
        findings.push(SourceFinding {
            code,
            file: file.to_string(),
            line,
            message,
            suppressed,
        });
    };

    // H001 (file scope): unwrap/expect hide a panic behind a method call.
    // `unwrap_or` / `unwrap_or_else` / `unwrap_or_default` are distinct
    // tokens and do not match — they are the sanctioned replacements.
    for i in 0..toks.len() {
        if (texts[i] == "unwrap" || texts[i] == "expect")
            && i > 0
            && texts[i - 1] == "."
            && texts.get(i + 1) == Some(&"(")
        {
            push(
                "H001",
                toks[i].line,
                format!(
                    "`.{}()` on the hot path: a poisoned invariant becomes a \
                     process-killing panic that aborts every in-flight request; \
                     return a typed error (see serve::EngineError) or annotate the \
                     invariant argument",
                    texts[i]
                ),
            );
        }
    }

    let ticks = tick_fn_ranges(&texts, tick_fns);
    let tick_of = |i: usize| -> Option<&str> {
        ticks
            .iter()
            .find(|&&(start, end, _)| (start..=end).contains(&i))
            .map(|&(_, _, name)| name)
    };

    // H002 (tick scope): panic-family macros abort the whole batch.
    for i in 0..toks.len() {
        if !PANIC_MACROS.contains(&texts[i]) || texts.get(i + 1) != Some(&"!") {
            continue;
        }
        if let Some(name) = tick_of(i) {
            push(
                "H002",
                toks[i].line,
                format!(
                    "`{}!` inside steady-state tick fn `{name}`: a panic here aborts \
                     every in-flight request; pre-validate at admission, return a \
                     typed error, or demote to debug_assert!",
                    texts[i]
                ),
            );
        }
    }

    // H003 / H005-index (tick scope): direct indexing and narrowing casts
    // inside index brackets. Range slices (`a[lo..hi]`) and literal
    // indices (`a[0]`) are exempt from H003: the former fail as checked
    // slices, the latter are pinned by the surrounding shape contract.
    let sites = index_sites(&texts);
    for site in &sites {
        let Some(name) = tick_of(site.recv) else {
            continue;
        };
        if !site.is_range && !site.is_literal {
            push(
                "H003",
                toks[site.recv].line,
                format!(
                    "direct index `{}[…]` inside tick fn `{name}`: a bookkeeping bug \
                     becomes an abort; use `get`/`get_mut` so it degrades into a \
                     typed error instead",
                    texts[site.recv]
                ),
            );
        }
        // One finding per index site: a chained cast (`x as u32 as u16`)
        // is a single defect, not one per `as`.
        if let Some(j) = (site.content.0..site.content.1).find(|&j| {
            texts[j] == "as"
                && texts
                    .get(j + 1)
                    .is_some_and(|t| NARROWING_TARGETS.contains(t))
        }) {
            push(
                "H005",
                toks[j].line,
                format!(
                    "narrowing cast `as {}` inside an index expression in tick fn \
                     `{name}`: truncation silently redirects the access; use a \
                     checked conversion",
                    texts[j + 1]
                ),
            );
        }
    }

    // H004 (tick scope): per-tick heap allocation.
    for i in 0..toks.len() {
        let Some(name) = tick_of(i) else { continue };
        let alloc_macro =
            (texts[i] == "vec" || texts[i] == "format") && texts.get(i + 1) == Some(&"!");
        let alloc_method = ALLOC_METHODS.contains(&texts[i])
            && i > 0
            && texts[i - 1] == "."
            && texts.get(i + 1).is_some_and(|t| *t == "(" || *t == "::");
        // `Vec::new`, `Vec::<f32>::with_capacity`, … — skip a turbofish
        // between the container and the constructor name.
        let mut ctor = None;
        if ALLOC_CONTAINERS.contains(&texts[i]) && texts.get(i + 1) == Some(&"::") {
            let mut j = i + 2;
            if texts.get(j) == Some(&"<") {
                let mut depth = 0i32;
                while j < texts.len() {
                    match texts[j] {
                        "<" => depth += 1,
                        ">" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                j += 1;
                if texts.get(j) == Some(&"::") {
                    j += 1;
                }
            }
            if texts
                .get(j)
                .is_some_and(|t| *t == "new" || *t == "with_capacity")
            {
                ctor = Some(texts[j]);
            }
        }
        if alloc_macro || alloc_method || ctor.is_some() {
            let what = if alloc_macro {
                format!("{}!", texts[i])
            } else if alloc_method {
                format!(".{}()", texts[i])
            } else {
                format!("{}::{}", texts[i], ctor.unwrap_or("new"))
            };
            push(
                "H004",
                toks[i].line,
                format!(
                    "heap allocation (`{what}`) inside steady-state tick fn `{name}`: \
                     per-tick allocation breaks the zero-alloc certification \
                     (crates/serve/tests/zero_alloc.rs); preallocate at admission \
                     and reuse the buffer"
                ),
            );
        }
    }

    // H005-sink (tick scope): any cast inside capacity/length arguments.
    for (lo, hi) in sink_arg_ranges(&texts) {
        if tick_of(lo.saturating_sub(2)).is_none() {
            continue;
        }
        let name = tick_of(lo.saturating_sub(2)).unwrap_or("?");
        // One finding per sink call: a chained cast in the argument is a
        // single defect, not one per `as`.
        if let Some(j) = (lo..hi.min(texts.len())).find(|&j| texts[j] == "as") {
            push(
                "H005",
                toks[j].line,
                format!(
                    "`as` cast feeding a capacity/length sink in tick fn \
                     `{name}`: a truncated or wrapped value silently corrupts \
                     buffer sizing; use a checked conversion",
                ),
            );
        }
    }

    // H009: reasoned annotations nothing consumed — the stale allowlist.
    for line in supp.stale_lines() {
        findings.push(SourceFinding {
            code: "H009",
            file: file.to_string(),
            line,
            message: "stale hot-ok suppression: no hot-path finding on this or the \
                      following line; remove the annotation or re-audit the site"
                .to_string(),
            suppressed: None,
        });
    }

    findings.sort_by(|a, b| (a.line, a.code).cmp(&(b.line, b.code)));
    findings
}

/// The outcome of a hot-path sweep over [`HOT_MANIFEST`].
#[derive(Debug, Clone, Default)]
pub struct HotAudit {
    /// Unsuppressed findings — any entry here fails the audit.
    pub findings: Vec<SourceFinding>,
    /// `hot-ok`-allowlisted findings, kept visible in reports.
    pub allowed: Vec<SourceFinding>,
    pub counts: HotCounts,
}

/// Audits every manifest file under `root`. A missing manifest file is a
/// hard `io::Error`, not an empty result: renames must update the
/// manifest or the audit fails loudly.
pub fn audit_hot_sources(root: &Path) -> std::io::Result<HotAudit> {
    let mut audit = HotAudit::default();
    for entry in HOT_MANIFEST {
        let path = root.join(entry.file);
        let text = std::fs::read_to_string(&path).map_err(|e| {
            std::io::Error::new(
                e.kind(),
                format!(
                    "hot-path manifest file {} is unreadable ({e}); if it moved, \
                     update analysis::hot::HOT_MANIFEST",
                    entry.file
                ),
            )
        })?;
        for finding in scan_hot_source(entry.file, &text, entry.tick_fns) {
            audit.counts.record(&finding);
            if finding.suppressed.is_some() {
                audit.allowed.push(finding);
            } else {
                audit.findings.push(finding);
            }
        }
        audit.counts.files += 1;
    }
    Ok(audit)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(text: &str) -> Vec<SourceFinding> {
        scan_hot_source("test.rs", text, &["tick"])
    }

    fn unsuppressed(text: &str) -> Vec<SourceFinding> {
        scan(text)
            .into_iter()
            .filter(|f| f.suppressed.is_none())
            .collect()
    }

    #[test]
    fn h001_unwrap_expect_file_wide_even_outside_tick_fns() {
        let src = "
            fn cold(x: Option<u32>) -> u32 { x.unwrap() }
            fn tick(x: Option<u32>) -> u32 { x.expect(\"live\") }
        ";
        let f = unsuppressed(src);
        assert_eq!(f.iter().filter(|f| f.code == "H001").count(), 2, "{f:?}");
    }

    #[test]
    fn h001_ignores_unwrap_or_family() {
        let src = "
            fn tick(x: Option<u32>) -> u32 {
                x.unwrap_or(0) + x.unwrap_or_else(|| 1) + x.unwrap_or_default()
            }
        ";
        assert!(unsuppressed(src).is_empty(), "{:?}", unsuppressed(src));
    }

    #[test]
    fn h002_panic_macros_only_in_tick_fns() {
        let src = "
            fn cold(n: usize) { assert!(n > 0); }
            fn tick(n: usize) {
                assert_eq!(n, 1);
                if n == 2 { panic!(\"boom\"); }
                debug_assert!(n < 10);
            }
        ";
        let f = unsuppressed(src);
        assert_eq!(f.iter().filter(|f| f.code == "H002").count(), 2, "{f:?}");
        // Neither the cold assert (line 2) nor the debug_assert (line 6).
        assert!(f.iter().all(|f| f.line == 4 || f.line == 5), "{f:?}");
    }

    #[test]
    fn h003_direct_index_but_not_ranges_literals_or_cold_fns() {
        let src = "
            fn cold(xs: &[f32], i: usize) -> f32 { xs[i] }
            fn tick(xs: &[f32], i: usize) -> f32 {
                let head = &xs[0];
                let window = &xs[1..4];
                xs[i] + head + window[0]
            }
        ";
        let f = unsuppressed(src);
        assert_eq!(f.iter().filter(|f| f.code == "H003").count(), 1, "{f:?}");
        assert!(f.iter().any(|f| f.message.contains("`xs[…]`")));
    }

    #[test]
    fn h004_allocation_forms_in_tick_scope() {
        let src = "
            fn cold() -> Vec<u32> { vec![1, 2, 3] }
            fn tick(xs: &[u32]) {
                let a = vec![0u8; 4];
                let b = format!(\"{}\", xs.len());
                let c: Vec<u32> = xs.iter().copied().collect();
                let d = xs.to_vec();
                let e = Vec::<f32>::with_capacity(8);
                let g = BTreeMap::<u32, u32>::new();
            }
        ";
        let f = unsuppressed(src);
        assert_eq!(f.iter().filter(|f| f.code == "H004").count(), 6, "{f:?}");
    }

    #[test]
    fn h005_casts_feeding_capacity_and_indexing() {
        let src = "
            fn tick(xs: &mut Vec<f32>, n: u64, i: u64) {
                xs.reserve(n as usize);
                let x = xs[(i as u32) as usize];
                let y = xs[i as usize];
            }
        ";
        let f = unsuppressed(src);
        // reserve arg + the narrowing `as u32` in the index; the widening
        // `as usize` index casts are exempt.
        assert_eq!(f.iter().filter(|f| f.code == "H005").count(), 2, "{f:?}");
    }

    #[test]
    fn h000_reasonless_and_h009_stale_annotations() {
        let f = unsuppressed("fn tick() { let x = 1; } // hot-ok");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].code, "H000");

        let f = unsuppressed("fn tick() { let x = 1; } // hot-ok: nothing here anymore");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].code, "H009");
    }

    #[test]
    fn hot_ok_with_reason_suppresses_and_reports_family() {
        let src = "
            fn tick(x: Option<u32>) -> u32 {
                // hot-ok: slot installed at admission two lines up; cannot be vacant
                x.expect(\"live slot\")
            }
        ";
        let all = scan(src);
        assert_eq!(all.len(), 1, "{all:?}");
        assert_eq!(
            all[0].suppressed.as_deref(),
            Some("slot installed at admission two lines up; cannot be vacant")
        );
        assert_eq!(all[0].family(), "hot-ok");
        assert!(unsuppressed(src).is_empty());
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "
            fn tick(n: usize) -> usize { n }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() {
                    let v = vec![1, 2, 3];
                    assert_eq!(v[0], 1);
                    v.get(9).unwrap();
                }
            }
        ";
        assert!(unsuppressed(src).is_empty(), "{:?}", unsuppressed(src));
    }

    #[test]
    fn trait_declarations_without_bodies_are_skipped() {
        let src = "
            trait Decoder {
                fn tick(&mut self) -> bool;
            }
            fn after(xs: &[u32], i: usize) -> u32 { xs[i] }
        ";
        // `after` is not a tick fn, and the bodyless decl must not make
        // the range scanner swallow it.
        assert!(unsuppressed(src).is_empty(), "{:?}", unsuppressed(src));
    }

    #[test]
    fn counts_tally_and_display() {
        let mut c = HotCounts::default();
        c.record(&SourceFinding {
            code: "H004",
            file: "x.rs".into(),
            line: 1,
            message: String::new(),
            suppressed: None,
        });
        c.record(&SourceFinding {
            code: "H001",
            file: "x.rs".into(),
            line: 2,
            message: String::new(),
            suppressed: Some("audited".into()),
        });
        assert_eq!(c.unsuppressed(), 1);
        assert_eq!(c.suppressed, 1);
        let text = c.to_string();
        assert!(text.contains("H004:1"), "{text}");
        assert!(text.contains("1 allowed (hot-ok)"), "{text}");
    }

    #[test]
    fn manifest_names_the_serving_loop() {
        let files: Vec<&str> = HOT_MANIFEST.iter().map(|h| h.file).collect();
        assert!(files.contains(&"crates/serve/src/engine.rs"));
        assert!(files.contains(&"crates/nn/src/batch.rs"));
        assert!(files.contains(&"crates/tensor/src/kernels.rs"));
        // The scripted test decoder must never be on the manifest.
        assert!(!files.iter().any(|f| f.contains("testing")));
    }
}
