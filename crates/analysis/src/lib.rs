//! The Graph Doctor: static analysis for the autodiff tape.
//!
//! A recorded [`tensor::Graph`] is a complete, inspectable program — every
//! op, operand edge, and output shape is on the tape. This crate re-checks
//! that program without re-executing any kernels:
//!
//! * [`shape`] — re-derives the output shape of every op from its operand
//!   shapes and reports disagreements with the recorded values (`S001`) or
//!   operand geometry an op could never accept (`S002`).
//! * [`flow`] — gradient-flow lints: parameters that can never receive a
//!   gradient (`G001`), dead subgraphs computed but never consumed
//!   (`G002`), `requires_grad` bookkeeping that backward can never reach
//!   (`G003`), and dropout ops recorded on an eval-mode tape (`G004`).
//! * [`sanitize`] — the opt-in runtime numeric sanitizer: scans forward
//!   values (`N001`) and gradients (`N002`) for NaN/Inf under a
//!   [`SanitizerMode`] schedule, reporting the first offending op with a
//!   tape backtrace instead of a bare assertion.
//! * [`det`] — the source-level determinism lints (`D000`–`D005`): a
//!   token-level scanner that taint-tracks hash-ordered iteration into
//!   order-sensitive sinks across the whole workspace, with a
//!   `// det-ok: <reason>` allowlist.
//! * [`order`] — the tape-level reduction-order analysis (`D010`/`D011`):
//!   canonical-order recomputation witnesses for every recomputable
//!   reduction plus a double-backward bit-equality witness.
//! * [`par`] — the parallel-safety auditor (`P000`–`P010`): concurrency
//!   lints over the same strip+lex infrastructure (shared statics, spawn
//!   captures, Relaxed orderings, lock-order cycles, hot-path blocking)
//!   plus the static schedule certifier that symbolically proves each
//!   declared [`tensor::sched::ReductionSchedule`] bit-equivalent to the
//!   canonical sequential reduction order.
//! * [`hot`] — the hot-path auditor (`H000`–`H009`): panic-freedom and
//!   allocation-discipline lints over an explicit manifest of the files
//!   that execute per serve tick (engine tick loop, admission queue,
//!   packed batch step, prefix cache, tensor kernels), paired with the
//!   counting-allocator test that certifies zero allocations per
//!   steady-state decode tick.
//! * [`registry`] — the canonical table of every emittable lint code,
//!   cross-checked against the counters and documentation.
//!
//! The static passes run once on the step-0 graph of every training loop
//! (`nn::train`, pretraining, fine-tuning) and on demand via the
//! `graph_doctor`, `det_audit`, and `par_audit` binaries in `bench`.

use std::fmt;

use tensor::{Graph, Var};

pub mod det;
pub mod flow;
pub mod hot;
pub mod lexer;
pub mod order;
pub mod par;
pub mod registry;
pub mod sanitize;
pub mod shape;
pub mod suppress;

pub use det::{DetCounts, SourceFinding};
pub use hot::HotCounts;
pub use par::{ParCounts, ScheduleRejection};
pub use sanitize::SanitizerMode;

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but survivable (wasted compute, stale bookkeeping).
    Warning,
    /// The tape is inconsistent or the run is numerically broken.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// One finding, tagged with a stable code (`S…` shape, `G…` gradient flow,
/// `N…` numeric).
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub code: &'static str,
    pub severity: Severity,
    /// Tape index of the offending node, when one is identifiable.
    pub op: Option<usize>,
    pub message: String,
    /// Producing-op chain ending at the offending node, innermost first.
    pub backtrace: Vec<String>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}] {}", self.severity, self.code, self.message)?;
        for frame in &self.backtrace {
            write!(f, "\n    {frame}")?;
        }
        Ok(())
    }
}

/// Whether the tape was recorded under training or evaluation semantics.
/// The tape itself does not know; the caller that built it does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TapeMode {
    Train,
    Eval,
}

/// The outcome of a doctor run over one tape.
#[derive(Debug, Clone, Default)]
pub struct Report {
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// Whether any diagnostic with `code` is present.
    pub fn has(&self, code: &str) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return f.write_str("graph doctor: tape is clean");
        }
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        write!(
            f,
            "graph doctor: {} error(s), {} warning(s)",
            self.error_count(),
            self.warning_count()
        )
    }
}

/// Runs every static pass (shape inference plus gradient flow) over a
/// recorded tape. `loss` is the scalar node `backward` starts from.
pub fn diagnose(g: &Graph, loss: Var, mode: TapeMode) -> Report {
    let mut diagnostics = shape::check(g);
    diagnostics.extend(flow::check(g, loss, mode));
    Report { diagnostics }
}

/// [`diagnose`] plus a full numeric scan of values and gradients — the
/// everything-at-once entry point used by the `graph_doctor` binary.
pub fn diagnose_full(g: &Graph, loss: Var, mode: TapeMode) -> Report {
    let mut report = diagnose(g, loss, mode);
    report.diagnostics.extend(sanitize::scan(g));
    report
}

/// Formats the producing-op chain that ends at `index`: the node itself,
/// then up to `depth` hops along first operands. Gives a diagnostic enough
/// provenance to locate the op inside a model without dumping the tape.
pub(crate) fn backtrace(g: &Graph, index: usize, depth: usize) -> Vec<String> {
    let mut frames = Vec::new();
    let mut cur = index;
    for hop in 0..=depth {
        let view = g.op_view(cur);
        let role = if hop == 0 { "at" } else { "from" };
        frames.push(format!(
            "{role} #{cur} {} {:?}",
            view.kind.name(),
            view.shape
        ));
        match view.inputs.first() {
            Some(&next) => cur = next,
            None => break,
        }
    }
    frames
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::Tensor;

    fn small_graph() -> (Graph, Var) {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![2, 3], vec![1.0; 6]), false);
        let w = g.param(Tensor::from_vec(vec![3, 2], vec![0.5; 6]), 0);
        let y = g.matmul(x, w);
        let loss = g.sum(y);
        (g, loss)
    }

    #[test]
    fn clean_graph_has_clean_report() {
        let (g, loss) = small_graph();
        let report = diagnose_full(&g, loss, TapeMode::Train);
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.to_string(), "graph doctor: tape is clean");
    }

    #[test]
    fn backtrace_walks_producing_ops() {
        let (g, loss) = small_graph();
        let frames = backtrace(&g, loss.index(), 4);
        assert_eq!(frames.len(), 3); // sum <- matmul <- leaf
        assert!(frames[0].starts_with("at #3 sum"));
        assert!(frames[1].starts_with("from #2 matmul"));
        assert!(frames[2].starts_with("from #0 leaf"));
    }

    #[test]
    fn report_counts_and_display() {
        let report = Report {
            diagnostics: vec![
                Diagnostic {
                    code: "S001",
                    severity: Severity::Error,
                    op: Some(1),
                    message: "boom".into(),
                    backtrace: vec!["at #1 matmul [2, 2]".into()],
                },
                Diagnostic {
                    code: "G002",
                    severity: Severity::Warning,
                    op: None,
                    message: "meh".into(),
                    backtrace: vec![],
                },
            ],
        };
        assert_eq!(report.error_count(), 1);
        assert_eq!(report.warning_count(), 1);
        assert!(report.has("S001") && !report.has("N001"));
        let text = report.to_string();
        assert!(text.contains("error[S001] boom"));
        assert!(text.contains("    at #1 matmul [2, 2]"));
        assert!(text.ends_with("1 error(s), 1 warning(s)"));
    }
}
