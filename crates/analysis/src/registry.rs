//! The canonical registry of every lint/diagnostic code the workspace can
//! emit, in one table. Tests here (and in `bench/tests/lint_registry.rs`)
//! cross-check the table against the counters and `DESIGN.md` so a new
//! code cannot ship undocumented and a documented code cannot silently
//! stop being emitted.

/// One registered diagnostic code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodeEntry {
    pub code: &'static str,
    /// The emitting subsystem.
    pub family: &'static str,
    pub summary: &'static str,
}

/// Every code any auditor, doctor pass, or validator in the workspace can
/// emit. Keep sorted by code within each family block.
pub const CODES: &[CodeEntry] = &[
    // Shape doctor (analysis::shape).
    CodeEntry {
        code: "S001",
        family: "shape",
        summary: "recorded output shape disagrees with re-derived shape",
    },
    CodeEntry {
        code: "S002",
        family: "shape",
        summary: "operand geometry the op can never accept",
    },
    // Gradient flow (analysis::flow).
    CodeEntry {
        code: "G001",
        family: "flow",
        summary: "parameter can never receive a gradient",
    },
    CodeEntry {
        code: "G002",
        family: "flow",
        summary: "dead subgraph computed but never consumed",
    },
    CodeEntry {
        code: "G003",
        family: "flow",
        summary: "requires_grad bookkeeping backward can never reach",
    },
    CodeEntry {
        code: "G004",
        family: "flow",
        summary: "dropout recorded on an eval-mode tape",
    },
    // Numeric sanitizer (analysis::sanitize).
    CodeEntry {
        code: "N001",
        family: "sanitize",
        summary: "NaN/Inf in a forward value",
    },
    CodeEntry {
        code: "N002",
        family: "sanitize",
        summary: "NaN/Inf in a gradient",
    },
    // VQL validator (vql::validate).
    CodeEntry {
        code: "V001",
        family: "vql",
        summary: "column reference not in the schema",
    },
    CodeEntry {
        code: "V002",
        family: "vql",
        summary: "aggregate applied to a non-numeric column",
    },
    CodeEntry {
        code: "V003",
        family: "vql",
        summary: "missing or miscounted encoding channel",
    },
    CodeEntry {
        code: "V004",
        family: "vql",
        summary: "table reference not in the schema",
    },
    CodeEntry {
        code: "V005",
        family: "vql",
        summary: "GROUP BY without an aggregate",
    },
    CodeEntry {
        code: "V006",
        family: "vql",
        summary: "aggregate without a GROUP BY",
    },
    // Determinism auditor, source layer (analysis::det).
    CodeEntry {
        code: "D000",
        family: "det",
        summary: "det-ok annotation without a reason",
    },
    CodeEntry {
        code: "D001",
        family: "det",
        summary: "hash-ordered iteration into an order-sensitive sink",
    },
    CodeEntry {
        code: "D002",
        family: "det",
        summary: "ambient randomness in tape or checkpoint state",
    },
    CodeEntry {
        code: "D003",
        family: "det",
        summary: "wall-clock time feeding computation",
    },
    CodeEntry {
        code: "D004",
        family: "det",
        summary: "environment read outside the sanctioned config path",
    },
    CodeEntry {
        code: "D005",
        family: "det",
        summary: "float accumulation over hash-ordered iteration",
    },
    CodeEntry {
        code: "D009",
        family: "det",
        summary: "stale det-ok suppression matching no finding",
    },
    // Determinism auditor, tape layer (analysis::order).
    CodeEntry {
        code: "D010",
        family: "order",
        summary: "forward reduction replay diverges from canonical order",
    },
    CodeEntry {
        code: "D011",
        family: "order",
        summary: "backward accumulation diverges from declared order",
    },
    // Parallel-safety auditor, source layer (analysis::par).
    CodeEntry {
        code: "P000",
        family: "par",
        summary: "par-ok annotation without a reason",
    },
    CodeEntry {
        code: "P001",
        family: "par",
        summary: "static mut or non-Sync interior-mutable shared static",
    },
    CodeEntry {
        code: "P002",
        family: "par",
        summary: "spawn closure capturing unsynchronized interior-mutable state",
    },
    CodeEntry {
        code: "P003",
        family: "par",
        summary: "Ordering::Relaxed on an atomic guarding data",
    },
    CodeEntry {
        code: "P004",
        family: "par",
        summary: "lock acquisition order conflicts across code paths",
    },
    CodeEntry {
        code: "P005",
        family: "par",
        summary: "float accumulation inside a spawned closure",
    },
    CodeEntry {
        code: "P006",
        family: "par",
        summary: "blocking primitive in the tape hot path",
    },
    CodeEntry {
        code: "P009",
        family: "par",
        summary: "stale par-ok suppression matching no finding",
    },
    // Parallel-safety auditor, schedule layer (analysis::par::certify).
    CodeEntry {
        code: "P010",
        family: "sched",
        summary: "reduction schedule not bit-equivalent to sequential order",
    },
    // Hot-path auditor (analysis::hot).
    CodeEntry {
        code: "H000",
        family: "hot",
        summary: "hot-ok annotation without a reason",
    },
    CodeEntry {
        code: "H001",
        family: "hot",
        summary: "unwrap/expect in hot-path non-test code",
    },
    CodeEntry {
        code: "H002",
        family: "hot",
        summary: "panic-family macro inside a steady-state tick function",
    },
    CodeEntry {
        code: "H003",
        family: "hot",
        summary: "unchecked direct indexing inside a tick function",
    },
    CodeEntry {
        code: "H004",
        family: "hot",
        summary: "heap allocation inside a steady-state tick function",
    },
    CodeEntry {
        code: "H005",
        family: "hot",
        summary: "fallible cast feeding capacity or indexing in a tick function",
    },
    CodeEntry {
        code: "H009",
        family: "hot",
        summary: "stale hot-ok suppression matching no finding",
    },
    // Serving engine rejection codes (serve::request::Rejection).
    CodeEntry {
        code: "R001",
        family: "serve",
        summary: "request refused at the front door: admission queue full",
    },
    CodeEntry {
        code: "R002",
        family: "serve",
        summary: "deadline expired while the request was still queued",
    },
    CodeEntry {
        code: "R003",
        family: "serve",
        summary: "deadline expired mid-decode; partial tokens returned",
    },
    CodeEntry {
        code: "R004",
        family: "serve",
        summary: "engine shutdown retired a queued or in-flight request",
    },
    CodeEntry {
        code: "R005",
        family: "serve",
        summary: "engine invariant violation; request drained with a typed error",
    },
    // Prefix-cache events (nn::prefix_cache).
    CodeEntry {
        code: "C001",
        family: "cache",
        summary: "lookup adopted a resident encoder-state entry",
    },
    CodeEntry {
        code: "C002",
        family: "cache",
        summary: "lookup found no reusable entry; encoder recomputed",
    },
    CodeEntry {
        code: "C003",
        family: "cache",
        summary: "unpinned LRU entry evicted to fit an insert",
    },
    CodeEntry {
        code: "C004",
        family: "cache",
        summary: "insert bypassed: oversized, all-pinned, or hash collision",
    },
    // Perf-trajectory gate (bench::perf::gate, the perf_gate bin).
    CodeEntry {
        code: "T001",
        family: "perf",
        summary: "series moved against its direction beyond the tolerance band",
    },
    CodeEntry {
        code: "T002",
        family: "perf",
        summary: "baseline series no current bench emits",
    },
    CodeEntry {
        code: "T003",
        family: "perf",
        summary: "perf schema violation: bad name, unit, value, or duplicate",
    },
    CodeEntry {
        code: "T004",
        family: "perf",
        summary: "stale gate entry naming a series no bin emits",
    },
];

/// Looks up a code's entry.
pub fn lookup(code: &str) -> Option<&'static CodeEntry> {
    CODES.iter().find(|e| e.code == code)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn codes_are_unique_and_well_formed() {
        let mut seen = BTreeSet::new();
        for e in CODES {
            assert!(seen.insert(e.code), "duplicate code {}", e.code);
            let (prefix, digits) = e.code.split_at(1);
            assert!(
                matches!(
                    prefix,
                    "S" | "G" | "N" | "V" | "D" | "P" | "H" | "R" | "C" | "T"
                ),
                "unknown family prefix in {}",
                e.code
            );
            assert_eq!(digits.len(), 3, "{} must be letter+3 digits", e.code);
            assert!(digits.chars().all(|c| c.is_ascii_digit()));
            assert!(!e.summary.is_empty());
        }
    }

    #[test]
    fn det_counts_codes_are_all_registered() {
        // Every code DetCounts can tally must be in the registry.
        for code in ["D000", "D001", "D002", "D003", "D004", "D005", "D009"] {
            assert!(lookup(code).is_some(), "{code} missing from registry");
        }
        // And every registered det-family code must be tallied by DetCounts:
        // feed a synthetic finding through and confirm it does not panic.
        for e in CODES.iter().filter(|e| e.family == "det") {
            let mut c = crate::det::DetCounts::default();
            c.record(&crate::det::SourceFinding {
                code: e.code,
                file: "x.rs".into(),
                line: 1,
                message: String::new(),
                suppressed: None,
            });
            assert_eq!(c.unsuppressed(), 1, "{} not counted", e.code);
        }
    }

    #[test]
    fn par_counts_codes_are_all_registered() {
        for e in CODES.iter().filter(|e| e.family == "par") {
            let mut c = crate::par::ParCounts::default();
            c.record(&crate::det::SourceFinding {
                code: e.code,
                file: "x.rs".into(),
                line: 1,
                message: String::new(),
                suppressed: None,
            });
            assert_eq!(c.unsuppressed(), 1, "{} not counted", e.code);
        }
        let mut c = crate::par::ParCounts::default();
        c.record_schedule("P010");
        assert_eq!(c.unsuppressed(), 1);
        assert!(lookup("P010").is_some());
    }

    #[test]
    fn hot_counts_codes_are_all_registered() {
        // Every code HotCounts can tally must be in the registry, and
        // every registered hot-family code must be tallied by HotCounts.
        for code in ["H000", "H001", "H002", "H003", "H004", "H005", "H009"] {
            assert!(lookup(code).is_some(), "{code} missing from registry");
        }
        for e in CODES.iter().filter(|e| e.family == "hot") {
            let mut c = crate::hot::HotCounts::default();
            c.record(&crate::det::SourceFinding {
                code: e.code,
                file: "x.rs".into(),
                line: 1,
                message: String::new(),
                suppressed: None,
            });
            assert_eq!(c.unsuppressed(), 1, "{} not counted", e.code);
        }
    }

    #[test]
    fn serve_rejection_codes_are_registered() {
        for code in ["R001", "R002", "R003", "R004", "R005"] {
            let e = lookup(code).unwrap_or_else(|| panic!("{code} missing"));
            assert_eq!(e.family, "serve");
        }
    }

    #[test]
    fn doctor_codes_are_registered() {
        for code in [
            "S001", "S002", "G001", "G002", "G003", "G004", "N001", "N002",
        ] {
            assert!(lookup(code).is_some(), "{code} missing from registry");
        }
    }

    #[test]
    fn lookup_finds_and_rejects() {
        assert_eq!(lookup("P010").unwrap().family, "sched");
        assert!(lookup("Z999").is_none());
    }
}
