//! Pass 2: gradient-flow lints.
//!
//! `backward` walks the tape from the loss toward index 0, following
//! operand edges and skipping nodes that do not require gradients. That
//! makes "will this parameter ever train?" a pure reachability question —
//! answerable before spending a single backward pass.
//!
//! Codes:
//! * `G001` (error) — a trainable parameter is not an ancestor of the
//!   loss: it will never receive a gradient.
//! * `G002` (warning) — a dead subgraph: ops whose results are never
//!   consumed by anything and that do not feed the loss (wasted forward
//!   compute).
//! * `G003` (warning) — `requires_grad` bookkeeping on non-parameter nodes
//!   backward can never reach (wasted tape memory).
//! * `G004` — a dropout op recorded on an eval-mode tape: an error when
//!   the mask actually dropped units, a warning when it is the identity.

use tensor::{Graph, OpKind, OpView, Var};

use crate::{backtrace, Diagnostic, Severity, TapeMode};

const BACKTRACE_DEPTH: usize = 4;

/// Runs the gradient-flow lints. `loss` is the node `backward` starts
/// from; `mode` states whether the caller built this tape for training or
/// evaluation.
pub fn check(g: &Graph, loss: Var, mode: TapeMode) -> Vec<Diagnostic> {
    let views: Vec<OpView<'_>> = g.op_views().collect();
    let n = views.len();
    let mut diagnostics = Vec::new();
    if n == 0 {
        return diagnostics;
    }

    // Reverse reachability from the loss along operand edges — exactly the
    // set of nodes backward can visit.
    let mut feeds_loss = vec![false; n];
    let mut stack = vec![loss.index()];
    while let Some(i) = stack.pop() {
        if feeds_loss[i] {
            continue;
        }
        feeds_loss[i] = true;
        stack.extend(views[i].inputs.iter().copied());
    }

    // Consumption: a node some later op reads.
    let mut consumed = vec![false; n];
    for view in &views {
        for &i in &view.inputs {
            consumed[i] = true;
        }
    }

    // G001: parameters disconnected from the loss.
    for view in &views {
        if let OpKind::Leaf {
            param_hook: Some(hook),
        } = view.kind
        {
            if !feeds_loss[view.index] {
                diagnostics.push(Diagnostic {
                    code: "G001",
                    severity: Severity::Error,
                    op: Some(view.index),
                    message: format!(
                        "#{} param (hook {hook}) never receives gradients: \
                         no path to the loss at #{}",
                        view.index,
                        loss.index()
                    ),
                    backtrace: backtrace(g, view.index, BACKTRACE_DEPTH),
                });
            }
        }
    }

    // G002: dead subgraphs, reported at their sinks (nodes nothing reads).
    for view in &views {
        let is_sink = !consumed[view.index] && view.index != loss.index();
        let is_leaf = matches!(view.kind, OpKind::Leaf { .. });
        if is_sink && !is_leaf && !feeds_loss[view.index] {
            // Size of the subtree that exists only to feed this sink.
            let mut dead = vec![false; n];
            let mut stack = vec![view.index];
            let mut count = 0usize;
            while let Some(i) = stack.pop() {
                if dead[i] || feeds_loss[i] {
                    continue;
                }
                dead[i] = true;
                count += 1;
                stack.extend(views[i].inputs.iter().copied());
            }
            diagnostics.push(Diagnostic {
                code: "G002",
                severity: Severity::Warning,
                op: Some(view.index),
                message: format!(
                    "#{} {}: dead subgraph — {count} op(s) computed but never \
                     used by the loss",
                    view.index,
                    view.kind.name()
                ),
                backtrace: backtrace(g, view.index, BACKTRACE_DEPTH),
            });
        }
    }

    // G003: requires_grad bookkeeping backward can never reach, aggregated
    // into one diagnostic to keep large tapes readable.
    let leaks: Vec<usize> = views
        .iter()
        .filter(|v| {
            v.requires_grad && !feeds_loss[v.index] && !matches!(v.kind, OpKind::Leaf { .. })
        })
        .map(|v| v.index)
        .collect();
    if let Some(&first) = leaks.first() {
        diagnostics.push(Diagnostic {
            code: "G003",
            severity: Severity::Warning,
            op: Some(first),
            message: format!(
                "requires_grad leak: {} op(s) carry gradient bookkeeping but \
                 backward can never reach them (first: #{first} {})",
                leaks.len(),
                views[first].kind.name()
            ),
            backtrace: backtrace(g, first, BACKTRACE_DEPTH),
        });
    }

    // G004: dropout on an eval-mode tape.
    if mode == TapeMode::Eval {
        for view in &views {
            if let OpKind::Dropout { identity } = view.kind {
                diagnostics.push(Diagnostic {
                    code: "G004",
                    severity: if identity {
                        Severity::Warning
                    } else {
                        Severity::Error
                    },
                    op: Some(view.index),
                    message: format!(
                        "#{} dropout recorded on an eval-mode tape{}",
                        view.index,
                        if identity {
                            " (identity mask — harmless but wasteful)"
                        } else {
                            " with an active mask: evaluation is stochastic"
                        }
                    ),
                    backtrace: backtrace(g, view.index, BACKTRACE_DEPTH),
                });
            }
        }
    }

    diagnostics
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::Tensor;

    fn t(shape: Vec<usize>, fill: f32) -> Tensor {
        let n = shape.iter().product();
        Tensor::from_vec(shape, vec![fill; n])
    }

    #[test]
    fn connected_graph_is_clean() {
        let mut g = Graph::new();
        let x = g.leaf(t(vec![2, 3], 1.0), false);
        let w = g.param(t(vec![3, 2], 0.5), 0);
        let y = g.matmul(x, w);
        let loss = g.sum(y);
        assert!(check(&g, loss, TapeMode::Train).is_empty());
    }

    #[test]
    fn disconnected_param_is_flagged() {
        let mut g = Graph::new();
        let x = g.leaf(t(vec![2, 3], 1.0), false);
        let w = g.param(t(vec![3, 2], 0.5), 7);
        let orphan = g.param(t(vec![4], 0.1), 8);
        let y = g.matmul(x, w);
        let loss = g.sum(y);
        let diags = check(&g, loss, TapeMode::Train);
        let hit = diags.iter().find(|d| d.code == "G001").expect("G001 fires");
        assert_eq!(hit.op, Some(orphan.index()));
        assert!(hit.message.contains("hook 8"), "{}", hit.message);
        // The connected param must NOT be flagged.
        assert!(diags.iter().all(|d| d.op != Some(w.index())));
    }

    #[test]
    fn dead_subgraph_and_leak_are_flagged() {
        let mut g = Graph::new();
        let x = g.leaf(t(vec![2, 3], 1.0), false);
        let w = g.param(t(vec![3, 2], 0.5), 0);
        let y = g.matmul(x, w);
        // Dead branch: computed from the param, consumed by nothing.
        let dead_mid = g.relu(y);
        let dead_sink = g.scale(dead_mid, 2.0);
        let loss = g.sum(y);
        let diags = check(&g, loss, TapeMode::Train);
        let dead = diags.iter().find(|d| d.code == "G002").expect("G002 fires");
        assert_eq!(dead.op, Some(dead_sink.index()));
        assert!(dead.message.contains("2 op(s)"), "{}", dead.message);
        let leak = diags.iter().find(|d| d.code == "G003").expect("G003 fires");
        assert!(leak.message.contains("2 op(s)"), "{}", leak.message);
    }

    #[test]
    fn dropout_on_eval_tape_is_flagged_by_mask_state() {
        let mut g = Graph::new();
        let x = g.leaf(t(vec![4, 4], 1.0), true);
        let active = g.dropout(x, 0.5);
        let idle = g.dropout(x, 0.0);
        let joined = g.add(active, idle);
        let loss = g.sum(joined);
        assert!(check(&g, loss, TapeMode::Train)
            .iter()
            .all(|d| d.code != "G004"));
        let diags = check(&g, loss, TapeMode::Eval);
        let by_op = |op: Var| diags.iter().find(|d| d.op == Some(op.index())).unwrap();
        assert_eq!(by_op(active).severity, Severity::Error);
        assert_eq!(by_op(idle).severity, Severity::Warning);
    }
}
