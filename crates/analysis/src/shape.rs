//! Pass 1: shape inference and validation.
//!
//! Every tape node records the shape of the value it produced. This pass
//! independently re-derives that shape from the operand shapes and the
//! op's metadata — the same rules the kernels implement, but written once,
//! declaratively, and without touching any data. Disagreement means either
//! the tape was corrupted or an op recorded something its kernel did not
//! compute.
//!
//! Codes: `S002` when the operands violate the op's geometry constraints
//! (e.g. a matmul inner-dimension mismatch), `S001` when the operands are
//! acceptable but the recorded output shape differs from the derived one.

use tensor::{Graph, MmOrient, OpKind};

use crate::{backtrace, Diagnostic, Severity};

/// Depth of the provenance chain attached to shape diagnostics.
const BACKTRACE_DEPTH: usize = 4;

fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// Re-derives the output shape of `kind` from its operand shapes.
///
/// `recorded` is the recorded output shape. It is consulted only by ops
/// whose target geometry is a free parameter not stored on the tape (the
/// reshape target, the slice length); for those the pass validates the
/// recorded shape's internal consistency instead of deriving it outright.
pub fn infer(kind: &OpKind, inputs: &[&[usize]], recorded: &[usize]) -> Result<Vec<usize>, String> {
    match kind {
        OpKind::Leaf { .. } => Ok(recorded.to_vec()),
        OpKind::Add | OpKind::Mul => {
            let (a, b) = (inputs[0], inputs[1]);
            if a != b {
                return Err(format!("elementwise operands differ: {a:?} vs {b:?}"));
            }
            Ok(a.to_vec())
        }
        OpKind::AddBias => {
            let (x, bias) = (inputs[0], inputs[1]);
            if x.len() != 2 {
                return Err(format!("add_bias input must be 2-D, got {x:?}"));
            }
            if numel(bias) != x[1] {
                return Err(format!(
                    "bias has {} elements but input {x:?} has {} columns",
                    numel(bias),
                    x[1]
                ));
            }
            Ok(x.to_vec())
        }
        OpKind::Scale
        | OpKind::Relu
        | OpKind::Sigmoid
        | OpKind::Tanh
        | OpKind::Softmax
        | OpKind::Dropout { .. } => Ok(inputs[0].to_vec()),
        OpKind::Matmul { orient } => {
            let (a, b) = (inputs[0], inputs[1]);
            if a.len() != b.len() || !(a.len() == 2 || a.len() == 3) {
                return Err(format!(
                    "matmul operands must both be 2-D or both 3-D, got {a:?} and {b:?}"
                ));
            }
            let (batch, a2, b2) = if a.len() == 3 {
                if a[0] != b[0] {
                    return Err(format!(
                        "batched matmul batch dims differ: {} vs {}",
                        a[0], b[0]
                    ));
                }
                (Some(a[0]), &a[1..], &b[1..])
            } else {
                (None, a, b)
            };
            // Orientation decides which dims must agree (the contraction
            // dim k) and which survive (m, n).
            let (m, ka, kb, n) = match orient {
                MmOrient::Nn => (a2[0], a2[1], b2[0], b2[1]),
                MmOrient::Nt => (a2[0], a2[1], b2[1], b2[0]),
                MmOrient::Tn => (a2[1], a2[0], b2[0], b2[1]),
            };
            if ka != kb {
                return Err(format!(
                    "matmul inner dims mismatch: m={m} k={ka} vs k={kb} n={n} \
                     (operands {a:?}, {b:?})"
                ));
            }
            Ok(match batch {
                Some(bt) => vec![bt, m, n],
                None => vec![m, n],
            })
        }
        OpKind::RmsNorm => {
            let (x, gain) = (inputs[0], inputs[1]);
            let last = *x.last().ok_or("rms_norm input has no dimensions")?;
            if numel(gain) != last {
                return Err(format!(
                    "rms_norm gain has {} elements but the normalized dim is {last}",
                    numel(gain)
                ));
            }
            Ok(x.to_vec())
        }
        OpKind::Embedding { num_ids } => {
            let table = inputs[0];
            if table.len() != 2 {
                return Err(format!("embedding table must be 2-D, got {table:?}"));
            }
            Ok(vec![*num_ids, table[1]])
        }
        OpKind::Reshape { old_shape } => {
            let x = inputs[0];
            if x != old_shape.as_slice() {
                return Err(format!(
                    "reshape recorded source shape {old_shape:?} but the input is {x:?}"
                ));
            }
            if numel(recorded) != numel(x) {
                return Err(format!(
                    "reshape changes element count: {x:?} ({}) -> {recorded:?} ({})",
                    numel(x),
                    numel(recorded)
                ));
            }
            Ok(recorded.to_vec())
        }
        OpKind::Permute3 { perm } => {
            let x = inputs[0];
            if x.len() != 3 {
                return Err(format!("permute3 input must be 3-D, got {x:?}"));
            }
            let mut seen = [false; 3];
            for &p in perm {
                if p > 2 || seen[p] {
                    return Err(format!("invalid permutation {perm:?}"));
                }
                seen[p] = true;
            }
            Ok(vec![x[perm[0]], x[perm[1]], x[perm[2]]])
        }
        OpKind::CrossEntropy { num_targets } => {
            let logits = inputs[0];
            if logits.len() != 2 {
                return Err(format!("cross_entropy logits must be 2-D, got {logits:?}"));
            }
            if logits[0] != *num_targets {
                return Err(format!(
                    "cross_entropy has {num_targets} targets for {} logit rows",
                    logits[0]
                ));
            }
            Ok(vec![1])
        }
        OpKind::Sum => Ok(vec![1]),
        OpKind::ConcatRows { part_rows } => {
            if inputs.is_empty() {
                return Err("concat_rows has no parts".into());
            }
            let cols = *inputs[0]
                .get(1)
                .ok_or_else(|| format!("concat_rows part must be 2-D, got {:?}", inputs[0]))?;
            let mut total = 0usize;
            for (i, part) in inputs.iter().enumerate() {
                if part.len() != 2 || part[1] != cols {
                    return Err(format!(
                        "concat_rows part {i} is {part:?}, expected [_, {cols}]"
                    ));
                }
                if part_rows.get(i) != Some(&part[0]) {
                    return Err(format!(
                        "concat_rows recorded {:?} rows for part {i} of shape {part:?}",
                        part_rows.get(i)
                    ));
                }
                total += part[0];
            }
            Ok(vec![total, cols])
        }
        OpKind::SliceRows { start } => {
            let x = inputs[0];
            if x.len() != 2 || recorded.len() != 2 {
                return Err(format!(
                    "slice_rows needs 2-D input and output, got {x:?} -> {recorded:?}"
                ));
            }
            if recorded[1] != x[1] {
                return Err(format!("slice_rows changes width: {x:?} -> {recorded:?}"));
            }
            if start + recorded[0] > x[0] {
                return Err(format!(
                    "slice_rows reads rows {start}..{} of a {}-row input",
                    start + recorded[0],
                    x[0]
                ));
            }
            Ok(recorded.to_vec())
        }
        OpKind::GatherRows { num_ids } => {
            let x = inputs[0];
            if x.len() != 2 {
                return Err(format!("gather_rows needs a 2-D input, got {x:?}"));
            }
            Ok(vec![*num_ids, x[1]])
        }
    }
}

/// Runs shape inference over every node of a recorded tape.
pub fn check(g: &Graph) -> Vec<Diagnostic> {
    let mut diagnostics = Vec::new();
    for view in g.op_views() {
        let input_shapes: Vec<&[usize]> = view
            .inputs
            .iter()
            .map(|&i| g.node_value(i).shape())
            .collect();
        match infer(&view.kind, &input_shapes, view.shape) {
            Err(why) => diagnostics.push(Diagnostic {
                code: "S002",
                severity: Severity::Error,
                op: Some(view.index),
                message: format!("#{} {}: {why}", view.index, view.kind.name()),
                backtrace: backtrace(g, view.index, BACKTRACE_DEPTH),
            }),
            Ok(derived) if derived != view.shape => diagnostics.push(Diagnostic {
                code: "S001",
                severity: Severity::Error,
                op: Some(view.index),
                message: format!(
                    "#{} {}: recorded output shape {:?} but operands derive {:?}",
                    view.index,
                    view.kind.name(),
                    view.shape,
                    derived
                ),
                backtrace: backtrace(g, view.index, BACKTRACE_DEPTH),
            }),
            Ok(_) => {}
        }
    }
    diagnostics
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::Tensor;

    #[test]
    fn matmul_inner_mismatch_is_rejected() {
        let kind = OpKind::Matmul {
            orient: MmOrient::Nn,
        };
        let err = infer(&kind, &[&[2, 3], &[4, 5]], &[2, 5]).unwrap_err();
        assert!(err.contains("inner dims mismatch"), "{err}");
        assert!(err.contains("k=3") && err.contains("k=4"), "{err}");
    }

    #[test]
    fn matmul_orientations_derive_correctly() {
        let mk = |o| OpKind::Matmul { orient: o };
        assert_eq!(
            infer(&mk(MmOrient::Nn), &[&[2, 3], &[3, 5]], &[]).unwrap(),
            vec![2, 5]
        );
        assert_eq!(
            infer(&mk(MmOrient::Nt), &[&[2, 3], &[5, 3]], &[]).unwrap(),
            vec![2, 5]
        );
        assert_eq!(
            infer(&mk(MmOrient::Tn), &[&[3, 2], &[3, 5]], &[]).unwrap(),
            vec![2, 5]
        );
        assert_eq!(
            infer(&mk(MmOrient::Nt), &[&[4, 2, 3], &[4, 5, 3]], &[]).unwrap(),
            vec![4, 2, 5]
        );
    }

    #[test]
    fn elementwise_shape_mismatch_is_rejected() {
        let err = infer(&OpKind::Add, &[&[2, 3], &[3, 2]], &[2, 3]).unwrap_err();
        assert!(err.contains("elementwise"), "{err}");
    }

    #[test]
    fn reshape_must_preserve_element_count() {
        let kind = OpKind::Reshape {
            old_shape: vec![2, 6],
        };
        assert_eq!(infer(&kind, &[&[2, 6]], &[3, 4]).unwrap(), vec![3, 4]);
        let err = infer(&kind, &[&[2, 6]], &[3, 5]).unwrap_err();
        assert!(err.contains("element count"), "{err}");
    }

    #[test]
    fn embedding_derives_rows_from_id_count() {
        let kind = OpKind::Embedding { num_ids: 7 };
        assert_eq!(infer(&kind, &[&[100, 16]], &[]).unwrap(), vec![7, 16]);
        assert!(infer(&kind, &[&[100]], &[]).is_err());
    }

    #[test]
    fn concat_rows_checks_widths_and_recorded_rows() {
        let kind = OpKind::ConcatRows {
            part_rows: vec![2, 3],
        };
        assert_eq!(infer(&kind, &[&[2, 4], &[3, 4]], &[]).unwrap(), vec![5, 4]);
        assert!(infer(&kind, &[&[2, 4], &[3, 5]], &[]).is_err());
        let stale = OpKind::ConcatRows {
            part_rows: vec![2, 9],
        };
        assert!(infer(&stale, &[&[2, 4], &[3, 4]], &[]).is_err());
    }

    #[test]
    fn gather_rows_derives_rows_from_id_count() {
        let kind = OpKind::GatherRows { num_ids: 5 };
        assert_eq!(infer(&kind, &[&[9, 4]], &[]).unwrap(), vec![5, 4]);
        assert!(infer(&kind, &[&[9]], &[]).is_err());
    }

    #[test]
    fn slice_rows_bounds_are_enforced() {
        let kind = OpKind::SliceRows { start: 3 };
        assert_eq!(infer(&kind, &[&[10, 4]], &[5, 4]).unwrap(), vec![5, 4]);
        assert!(infer(&kind, &[&[10, 4]], &[8, 4]).is_err());
        assert!(infer(&kind, &[&[10, 4]], &[5, 3]).is_err());
    }

    #[test]
    fn check_fires_on_a_corrupted_tape() {
        // Build a valid tape, then corrupt one recorded shape: the pass must
        // localize the damage to that op with provenance.
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![2, 3], vec![1.0; 6]), false);
        let w = g.param(Tensor::from_vec(vec![3, 4], vec![0.1; 12]), 0);
        let y = g.matmul(x, w);
        let _loss = g.sum(y);
        assert!(check(&g).is_empty());

        g.override_shape_for_test(y.index(), vec![4, 2]);
        let diags = check(&g);
        let hit = diags
            .iter()
            .find(|d| d.op == Some(y.index()))
            .expect("corrupted matmul flagged");
        assert_eq!(hit.code, "S001");
        assert!(hit.message.contains("[4, 2]") && hit.message.contains("[2, 4]"));
        assert!(hit.backtrace[0].starts_with(&format!("at #{} matmul", y.index())));
    }
}
