//! Layout-preserving strip+lex infrastructure shared by the source-level
//! analyzers (`det` for the D-family, `par` for the P-family).
//!
//! Stripping replaces comments, string literals, and char literals with
//! spaces (newlines survive), so every token's `(line, col)` in the
//! stripped text equals its position in the original file. The side
//! tables the lint rules need — original string-literal contents and
//! suppression annotations per family — are collected during the same
//! pass. `#[cfg(test)]` modules are dropped from the token stream before
//! any rule runs: test code never ships, and the differential suites are
//! the dynamic check there.
//!
//! Suppression annotations (`// det-ok: <reason>`, `// par-ok: <reason>`)
//! are only recognized in *non-doc* comments: `///` and `//!` (and their
//! block forms) are documentation, where the markers appear as prose, not
//! as audit decisions.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// The suppression families the strip pass collects. Each analyzer
/// consumes its own family via [`crate::suppress::Suppressions`].
pub const SUPPRESS_FAMILIES: &[&str] = &["det-ok", "hot-ok", "par-ok"];

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Tok {
    pub text: String,
    pub line: usize,
    pub col: usize,
}

/// What stripping a file yields: lexable text plus the side tables the
/// lint rules need.
pub struct Stripped {
    pub tokens: Vec<Tok>,
    /// Original contents of string literals keyed by the opening quote's
    /// (line, col) — the token stream carries only a `""` placeholder.
    pub literals: BTreeMap<(usize, usize), String>,
    /// Per-family suppression annotations: family → line → reason (empty
    /// string = annotation without a reason).
    pub suppress: BTreeMap<&'static str, BTreeMap<usize, String>>,
}

pub fn is_ident(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_alphabetic() || c == '_')
}

/// Records any suppression-family annotations found in one comment.
/// Doc comments (`///`, `//!`, `/**`, `/*!`) are prose and never count.
fn record_suppressions(
    comment: &str,
    is_doc: bool,
    line: usize,
    suppress: &mut BTreeMap<&'static str, BTreeMap<usize, String>>,
) {
    if is_doc {
        return;
    }
    for &family in SUPPRESS_FAMILIES {
        if let Some(pos) = comment.find(family) {
            let rest = comment[pos + family.len()..].trim_start_matches(':').trim();
            suppress
                .entry(family)
                .or_default()
                .insert(line, rest.to_string());
        }
    }
}

/// Strips comments, strings, and char literals from `text`, lexes the
/// remainder, and collects the side tables. Stripping is layout-
/// preserving — every removed character becomes a space (newlines stay) —
/// so token (line, col) positions in the stripped text equal positions in
/// the original, which is what keys the string-literal table.
pub fn strip_and_lex(text: &str) -> Stripped {
    let chars: Vec<char> = text.chars().collect();
    let mut clean: Vec<char> = Vec::with_capacity(chars.len());
    let mut literals = BTreeMap::new();
    let mut suppress = BTreeMap::new();
    let (mut line, mut col) = (1usize, 1usize);
    let mut i = 0;
    // Consumes chars[i], emitting `replacement` (or '\n' for newlines) so
    // the stripped text keeps the original layout.
    macro_rules! eat {
        ($replacement:expr) => {{
            if chars[i] == '\n' {
                clean.push('\n');
                line += 1;
                col = 1;
            } else {
                clean.push($replacement);
                col += 1;
            }
            i += 1;
        }};
    }
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        let prev_ident = clean
            .iter()
            .rev()
            .find(|ch| !ch.is_whitespace())
            .is_some_and(|p| p.is_alphanumeric() || *p == '_')
            && clean
                .last()
                .is_some_and(|p| p.is_alphanumeric() || *p == '_');
        if c == '/' && next == Some('/') {
            let start_line = line;
            let mut comment = String::new();
            while i < chars.len() && chars[i] != '\n' {
                comment.push(chars[i]);
                eat!(' ');
            }
            let is_doc = comment.starts_with("///") || comment.starts_with("//!");
            record_suppressions(&comment, is_doc, start_line, &mut suppress);
            continue;
        }
        if c == '/' && next == Some('*') {
            let start_line = line;
            let mut comment = String::new();
            let mut depth = 0usize;
            while i < chars.len() {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    eat!(' ');
                    eat!(' ');
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    eat!(' ');
                    eat!(' ');
                    if depth == 0 {
                        break;
                    }
                } else {
                    comment.push(chars[i]);
                    eat!(' ');
                }
            }
            // After eating the opening `/*`, a doc block's content starts
            // with the second `*` (`/** …`) or a `!` (`/*! …`).
            let is_doc = comment.starts_with('*') || comment.starts_with('!');
            record_suppressions(&comment, is_doc, start_line, &mut suppress);
            continue;
        }
        // Raw strings: r"…", r#"…"#, b-variants. Only when `r`/`b` is not
        // the tail of an identifier.
        if (c == 'r' || c == 'b') && !prev_ident {
            let mut j = i + 1;
            let mut hashes = 0;
            while chars.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            if chars.get(j) == Some(&'"') {
                let key = (line, col);
                eat!('\u{1}'); // the r/b prefix becomes the string marker
                while i <= j {
                    eat!(' '); // hashes and the opening quote
                }
                let mut content = String::new();
                while i < chars.len() {
                    if chars[i] == '"' {
                        let mut h = 0;
                        while chars.get(i + 1 + h) == Some(&'#') {
                            h += 1;
                        }
                        if h >= hashes {
                            for _ in 0..=hashes {
                                eat!(' ');
                            }
                            break;
                        }
                    }
                    content.push(chars[i]);
                    eat!(' ');
                }
                literals.insert(key, content);
                continue;
            }
        }
        if c == '"' {
            let key = (line, col);
            eat!('\u{1}'); // opening quote becomes the string marker
            let mut content = String::new();
            while i < chars.len() {
                if chars[i] == '\\' {
                    content.push(chars[i]);
                    eat!(' ');
                    if i < chars.len() {
                        content.push(chars[i]);
                        eat!(' ');
                    }
                    continue;
                }
                if chars[i] == '"' {
                    eat!(' ');
                    break;
                }
                content.push(chars[i]);
                eat!(' ');
            }
            literals.insert(key, content);
            continue;
        }
        // Char literal vs lifetime: 'x' / '\n' are literals, 'a in a
        // generic position is a lifetime (no closing quote nearby).
        if c == '\'' {
            if next == Some('\\') {
                // Escaped char literal: consume through the closing quote.
                eat!(' ');
                while i < chars.len() && chars[i] != '\'' {
                    eat!(' ');
                }
                if i < chars.len() {
                    eat!(' ');
                }
                continue;
            }
            if chars.get(i + 2) == Some(&'\'') {
                eat!(' ');
                eat!(' ');
                eat!(' ');
                continue;
            }
            // Lifetime: keep the tick so the type-walk can skip it.
        }
        eat!(c);
    }

    Stripped {
        tokens: lex(&clean.iter().collect::<String>()),
        literals,
        suppress,
    }
}

/// Lexes stripped text into identifier / operator / punctuation tokens.
fn lex(clean: &str) -> Vec<Tok> {
    let chars: Vec<char> = clean.chars().collect();
    let mut toks = Vec::new();
    let (mut line, mut col) = (1usize, 1usize);
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            col = 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            col += 1;
            i += 1;
            continue;
        }
        let (start_line, start_col) = (line, col);
        if c == '\u{1}' {
            // String literal placeholder: one marker char at the position
            // of the literal's first character.
            toks.push(Tok {
                text: "\"\"".to_string(),
                line: start_line,
                col: start_col,
            });
            i += 1;
            col += 1;
            continue;
        }
        if c.is_alphanumeric() || c == '_' {
            let mut text = String::new();
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                text.push(chars[i]);
                i += 1;
                col += 1;
            }
            toks.push(Tok {
                text,
                line: start_line,
                col: start_col,
            });
            continue;
        }
        // Multi-char operators the lint rules care about; everything else
        // lexes as a single char.
        let three: String = chars[i..chars.len().min(i + 3)].iter().collect();
        let two: String = chars[i..chars.len().min(i + 2)].iter().collect();
        let text = if three == "..=" {
            three
        } else if [
            "::", "->", "=>", "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=", "%=", "^=", "&=",
            "|=", "&&", "||", "..", "<<", ">>",
        ]
        .contains(&two.as_str())
        {
            two
        } else {
            c.to_string()
        };
        let len = text.chars().count();
        toks.push(Tok {
            text,
            line: start_line,
            col: start_col,
        });
        i += len;
        col += len;
    }
    toks
}

/// Removes `#[cfg(test)] mod … { … }` bodies from the token stream.
pub fn drop_test_modules(toks: Vec<Tok>) -> Vec<Tok> {
    drop_test_modules_spanned(toks).0
}

/// [`drop_test_modules`] plus the (inclusive) line spans that were
/// dropped, so callers can discard suppression annotations that live
/// inside test modules (see [`crate::suppress::Suppressions`]).
pub fn drop_test_modules_spanned(toks: Vec<Tok>) -> (Vec<Tok>, Vec<(usize, usize)>) {
    let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
    let mut dead = vec![false; toks.len()];
    let mut i = 0;
    while i + 6 < toks.len() {
        let is_cfg_test = texts[i] == "#"
            && texts[i + 1] == "["
            && texts[i + 2] == "cfg"
            && texts[i + 3] == "("
            && texts[i + 4] == "test"
            && texts[i + 5] == ")"
            && texts[i + 6] == "]";
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Find the opening brace of the annotated item (mod or fn).
        let mut j = i + 7;
        let mut depth = 0i32;
        while j < toks.len() {
            match texts[j] {
                "{" => {
                    depth += 1;
                }
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                ";" if depth == 0 => break, // `#[cfg(test)] mod x;` — nothing inline
                _ => {}
            }
            j += 1;
        }
        for flag in dead.iter_mut().take((j + 1).min(toks.len())).skip(i) {
            *flag = true;
        }
        i = j + 1;
    }
    let mut spans = Vec::new();
    let mut k = 0;
    while k < toks.len() {
        if dead[k] {
            let start = toks[k].line;
            while k + 1 < toks.len() && dead[k + 1] {
                k += 1;
            }
            spans.push((start, toks[k].line));
        }
        k += 1;
    }
    let live = toks
        .into_iter()
        .zip(dead)
        .filter_map(|(t, d)| (!d).then_some(t))
        .collect();
    (live, spans)
}

/// Collects every `.rs` file under `dir`, sorted for deterministic output.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Reads every `crates/*/src/**/*.rs` (plus the workspace root `src/`)
/// under `root` as `(workspace-relative path, contents)` pairs in sorted
/// order — the file set both source auditors sweep.
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            let src = dir.join("src");
            if src.is_dir() {
                rust_files(&src, &mut files)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        rust_files(&root_src, &mut files)?;
    }
    files
        .iter()
        .map(|path| {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(path)
                .to_string_lossy()
                .replace('\\', "/");
            std::fs::read_to_string(path).map(|text| (rel, text))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positions_are_layout_preserved() {
        let src = "let x = 1; /* gap */ let y = 2;\nlet z = 3;";
        let s = strip_and_lex(src);
        let y = s.tokens.iter().find(|t| t.text == "y").unwrap();
        assert_eq!((y.line, y.col), (1, 26));
        let z = s.tokens.iter().find(|t| t.text == "z").unwrap();
        assert_eq!((z.line, z.col), (2, 5));
    }

    #[test]
    fn both_families_collected_from_one_file() {
        let src = "
            let a = 1; // det-ok: audited A
            let b = 2; // par-ok: audited B
        ";
        let s = strip_and_lex(src);
        assert_eq!(s.suppress["det-ok"][&2], "audited A");
        assert_eq!(s.suppress["par-ok"][&3], "audited B");
    }

    #[test]
    fn doc_comments_never_register_suppressions() {
        let src = "
            /// Suppress with `// det-ok: <reason>` annotations.
            //! The `par-ok` marker works the same way.
            /** block doc mentioning det-ok */
            /*! inner block doc mentioning par-ok */
            fn f() {}
        ";
        let s = strip_and_lex(src);
        assert!(s.suppress.get("det-ok").is_none_or(|m| m.is_empty()));
        assert!(s.suppress.get("par-ok").is_none_or(|m| m.is_empty()));
    }

    #[test]
    fn block_comment_suppressions_still_count() {
        let src = "let a = 1; /* par-ok: workers own disjoint rows */";
        let s = strip_and_lex(src);
        assert_eq!(s.suppress["par-ok"][&1], "workers own disjoint rows");
    }
}
