//! Tape-level reduction-order analysis (`D010`/`D011`).
//!
//! PR 2's batched decoder and PR 3's crash resume both promise *bit*
//! equality, which only holds if every reduction on the tape accumulates
//! in one canonical, input-order-independent order. This pass makes that
//! promise checkable:
//!
//! * [`spec`] classifies every [`OpKind`] by where it accumulates —
//!   elementwise ops reduce nothing, matmul/softmax/rms-norm/cross-entropy
//!   reduce in a documented canonical order, and embedding/gather backward
//!   scatter-adds in recorded id-sequence order. The match is exhaustive,
//!   so adding a tape op without declaring its accumulation order is a
//!   compile error here.
//! * [`check_forward`] is a *witness*: for every op whose canonical order
//!   can be recomputed from operand values alone (sum, softmax, matmul in
//!   all three orientations, 2-D and batched 3-D), it re-runs the
//!   reduction in the declared order — mirroring the unblocked reference
//!   loops the blocked kernels are proven bitwise-equal to — and
//!   bit-compares against the recorded output. Any deviation is a `D010`
//!   error: the op's forward result depended on visit order.
//! * [`check_backward`] runs `backward` twice on the same tape (gradients
//!   are fully reset on entry) and bit-compares every node gradient
//!   between runs. A mismatch is a `D011` error attributed to the first
//!   diverging node. Because each run rebuilds its accumulation state from
//!   scratch, any visit-order dependence (e.g. a hash-ordered scatter-add)
//!   shows up as differing bits.
//!
//! `RmsNorm` and `CrossEntropy` forwards carry cached payloads (`eps`,
//! targets, smoothing) that `OpView` deliberately does not expose, so they
//! get a declared order in [`spec`] but no static recomputation; the
//! double-execution witness and the `nn` double-run harness cover them
//! dynamically.

use tensor::{Graph, MmOrient, OpKind, Var};

use crate::{backtrace, Diagnostic, Severity};

/// Where (and in what order) an op accumulates floating-point
/// contributions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Accumulation {
    /// No reduction: output elements each depend on O(1) input elements.
    None,
    /// A reduction with the documented canonical order.
    Reduce(&'static str),
    /// A scatter-add with the documented canonical order.
    ScatterAdd(&'static str),
}

/// Declared accumulation orders for one op's forward and backward.
#[derive(Debug, Clone, Copy)]
pub struct OpOrderSpec {
    pub forward: Accumulation,
    pub backward: Accumulation,
}

/// The canonical accumulation order of every tape op. Exhaustive on
/// purpose: a new `OpKind` variant fails to compile until its order is
/// declared here.
pub fn spec(kind: &OpKind) -> OpOrderSpec {
    use Accumulation::{None, Reduce, ScatterAdd};
    match kind {
        OpKind::Leaf { .. }
        | OpKind::Add
        | OpKind::Mul
        | OpKind::Scale
        | OpKind::Relu
        | OpKind::Sigmoid
        | OpKind::Tanh
        | OpKind::Reshape { .. }
        | OpKind::Permute3 { .. }
        | OpKind::Dropout { .. }
        | OpKind::ConcatRows { .. }
        | OpKind::SliceRows { .. } => OpOrderSpec {
            forward: None,
            backward: None,
        },
        // Forward broadcasts a row; backward reduces grad rows top-down.
        OpKind::AddBias => OpOrderSpec {
            forward: None,
            backward: Reduce("bias grad: ascending row index per column"),
        },
        OpKind::Matmul { orient } => OpOrderSpec {
            forward: Reduce(match orient {
                MmOrient::Nn => "ascending k, zero-skip saxpy into each C row",
                MmOrient::Nt => "ascending k register dot per C element",
                MmOrient::Tn => "ascending k, zero-skip saxpy into each C row",
            }),
            backward: Reduce("dA/dB via mm kernels, same ascending-k orders"),
        },
        OpKind::Softmax => OpOrderSpec {
            forward: Reduce("row max fold, then ascending-index exp sum, then reciprocal scale"),
            backward: Reduce("ascending-index dot(grad, probs) per row"),
        },
        OpKind::RmsNorm => OpOrderSpec {
            forward: Reduce("ascending-index sum of squares per row"),
            backward: Reduce("ascending-index dot terms per row"),
        },
        // Forward gathers rows (copies); backward scatter-adds one row per
        // recorded id, in id-sequence order.
        OpKind::Embedding { .. } => OpOrderSpec {
            forward: None,
            backward: ScatterAdd("recorded id-sequence order into the table grad"),
        },
        OpKind::GatherRows { .. } => OpOrderSpec {
            forward: None,
            backward: ScatterAdd("recorded id-sequence order into the source grad"),
        },
        OpKind::CrossEntropy { .. } => OpOrderSpec {
            forward: Reduce("log-softmax per row, then ascending target-position NLL mean"),
            backward: None, // per-position probs minus one-hot, no reduction
        },
        OpKind::Sum => OpOrderSpec {
            forward: Reduce("ascending flat index"),
            backward: None, // broadcast
        },
    }
}

/// The canonical forward accumulation order of a matmul orientation, as
/// declared in [`spec`] — the string the parallel-schedule certifier
/// (`crate::par`) cites in its certificates. Panics only if [`spec`] ever
/// stops declaring matmul forwards as reductions, which the exhaustive
/// match prevents.
pub fn matmul_canonical_order(orient: MmOrient) -> &'static str {
    match spec(&OpKind::Matmul { orient }).forward {
        Accumulation::Reduce(order) => order,
        other => panic!("matmul forward must be a declared reduction, got {other:?}"),
    }
}

/// Mirror of `kernels::softmax_rows`'s canonical order (the blocked and
/// batched paths are proven bitwise-equal to this in `tensor`'s tests).
fn softmax_rows_canonical(data: &mut [f32], cols: usize) {
    for row in data.chunks_mut(cols) {
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
}

/// Mirror of the unblocked `mm_nn` reference loop, including the
/// bit-relevant `av == 0.0` skip (skipping `c + 0.0 * b` changes `-0.0`
/// handling, so the witness must replicate it exactly).
fn mm_nn_canonical(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (p, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row.iter()) {
                *cv += av * bv;
            }
        }
    }
}

/// Mirror of the unblocked `mm_nt` reference loop: full-k register dot.
fn mm_nt_canonical(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut dot = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row.iter()) {
                dot += av * bv;
            }
            c[i * n + j] = dot;
        }
    }
}

/// Mirror of the unblocked `mm_tn` reference loop (zero-skip saxpy).
fn mm_tn_canonical(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for p in 0..k {
        let a_row = &a[p * m..(p + 1) * m];
        let b_row = &b[p * n..(p + 1) * n];
        for (i, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let c_row = &mut c[i * n..(i + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row.iter()) {
                *cv += av * bv;
            }
        }
    }
}

fn d010(g: &Graph, index: usize, order: &str, flat: usize, got: f32, want: f32) -> Diagnostic {
    let view = g.op_view(index);
    Diagnostic {
        code: "D010",
        severity: Severity::Error,
        op: Some(index),
        message: format!(
            "op #{index} {}: forward result deviates from the canonical \
             '{order}' accumulation at flat index {flat} \
             (recorded {got:?} = {:#010x}, canonical {want:?} = {:#010x})",
            view.kind.name(),
            got.to_bits(),
            want.to_bits(),
        ),
        backtrace: backtrace(g, index, 3),
    }
}

/// First flat index where two f32 slices differ in bits, with both values.
fn first_bit_diff(got: &[f32], want: &[f32]) -> Option<(usize, f32, f32)> {
    got.iter()
        .zip(want.iter())
        .position(|(a, b)| a.to_bits() != b.to_bits())
        .map(|i| (i, got[i], want[i]))
}

/// Recomputes every recomputable reduction on the tape in its canonical
/// order and bit-compares with the recorded forward values (`D010`).
pub fn check_forward(g: &Graph) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for view in g.op_views() {
        let order = match spec(&view.kind).forward {
            Accumulation::Reduce(order) => order,
            _ => continue,
        };
        let recomputed: Option<Vec<f32>> = match &view.kind {
            OpKind::Sum => {
                let x = g.node_value(view.inputs[0]);
                Some(vec![x.data().iter().sum::<f32>()])
            }
            OpKind::Softmax => {
                let x = g.node_value(view.inputs[0]);
                let cols = *x.shape().last().expect("softmax on empty shape");
                let mut data = x.data().to_vec();
                softmax_rows_canonical(&mut data, cols);
                Some(data)
            }
            OpKind::Matmul { orient } => {
                let (a, b) = (g.node_value(view.inputs[0]), g.node_value(view.inputs[1]));
                Some(matmul_canonical(a, b, *orient, view.shape))
            }
            // RmsNorm / CrossEntropy: canonical order declared in `spec`,
            // but their cached payloads (eps, targets, smoothing) are not
            // on the OpView surface — the double-execution witnesses cover
            // them dynamically.
            _ => None,
        };
        if let Some(want) = recomputed {
            let got = g.node_value(view.index).data();
            if let Some((flat, gv, wv)) = first_bit_diff(got, &want) {
                out.push(d010(g, view.index, order, flat, gv, wv));
            }
        }
    }
    out
}

/// Canonical-order matmul recomputation for both 2-D and batched 3-D
/// tapes, mirroring exactly how `Graph::mm`/`Graph::bmm` drive the
/// kernels (per-batch-slice, ascending batch index).
fn matmul_canonical(
    a: &tensor::Tensor,
    b: &tensor::Tensor,
    orient: MmOrient,
    out_shape: &[usize],
) -> Vec<f32> {
    let mut c = vec![0.0f32; out_shape.iter().product()];
    let run = |a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize| match orient {
        MmOrient::Nn => mm_nn_canonical(a, b, c, m, k, n),
        MmOrient::Nt => mm_nt_canonical(a, b, c, m, k, n),
        MmOrient::Tn => mm_tn_canonical(a, b, c, m, k, n),
    };
    if a.shape().len() == 2 {
        let (m, n) = (out_shape[0], out_shape[1]);
        let k = match orient {
            MmOrient::Nn | MmOrient::Nt => a.shape()[1],
            MmOrient::Tn => a.shape()[0],
        };
        run(a.data(), b.data(), &mut c, m, k, n);
    } else {
        let (batch, m, n) = (out_shape[0], out_shape[1], out_shape[2]);
        let k = a.shape()[2];
        let (a_sz, b_sz, c_sz) = (
            a.shape()[1] * a.shape()[2],
            b.shape()[1] * b.shape()[2],
            m * n,
        );
        for i in 0..batch {
            run(
                &a.data()[i * a_sz..(i + 1) * a_sz],
                &b.data()[i * b_sz..(i + 1) * b_sz],
                &mut c[i * c_sz..(i + 1) * c_sz],
                m,
                k,
                n,
            );
        }
    }
    c
}

/// Runs the backward pass twice via `run` and bit-compares every node
/// gradient between the two executions (`D011`). The default runner is
/// [`Graph::backward`]; tests substitute a tampering runner to prove the
/// witness has teeth.
pub fn check_backward_with(
    g: &mut Graph,
    loss: Var,
    mut run: impl FnMut(&mut Graph, Var),
) -> Vec<Diagnostic> {
    run(g, loss);
    let first: Vec<Option<Vec<u32>>> = (0..g.len())
        .map(|i| {
            g.node_grad(i)
                .map(|t| t.data().iter().map(|v| v.to_bits()).collect())
        })
        .collect();
    run(g, loss);
    let mut out = Vec::new();
    for (i, snap) in first.iter().enumerate() {
        let now: Option<Vec<u32>> = g
            .node_grad(i)
            .map(|t| t.data().iter().map(|v| v.to_bits()).collect());
        if *snap != now {
            let view = g.op_view(i);
            let detail = match (snap, &now) {
                (Some(a), Some(b)) => match a.iter().zip(b.iter()).position(|(x, y)| x != y) {
                    Some(flat) => format!(
                        "first divergence at flat index {flat} \
                         ({:#010x} vs {:#010x})",
                        a[flat], b[flat]
                    ),
                    None => "gradient lengths differ".to_string(),
                },
                _ => "gradient presence differs between runs".to_string(),
            };
            out.push(Diagnostic {
                code: "D011",
                severity: Severity::Error,
                op: Some(i),
                message: format!(
                    "op #{i} {}: backward accumulation is not reproducible — \
                     two identical backward passes produced different \
                     gradient bits; {detail}",
                    view.kind.name(),
                ),
                backtrace: backtrace(g, i, 3),
            });
            // The first diverging node names the culprit; downstream nodes
            // inherit the difference and would only repeat it.
            break;
        }
    }
    out
}

/// [`check_backward_with`] using the real [`Graph::backward`] (gradients
/// are reset at the start of every call, so running it twice is exact).
pub fn check_backward(g: &mut Graph, loss: Var) -> Vec<Diagnostic> {
    check_backward_with(g, loss, |g, l| g.backward(l))
}

/// The whole tape-level audit: forward canonical-order witnesses plus the
/// double-backward bit-equality witness.
pub fn check(g: &mut Graph, loss: Var) -> Vec<Diagnostic> {
    let mut out = check_forward(g);
    out.extend(check_backward(g, loss));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::Tensor;

    /// A tape exercising every recomputable reduction: 2-D matmul (Nn and
    /// Nt), batched 3-D matmul, softmax, and sum — plus scatter-add
    /// backward via embedding.
    fn reduction_tape() -> (Graph, Var) {
        let mut g = Graph::new();
        let table = g.param(
            Tensor::from_vec(
                vec![4, 3],
                (0..12).map(|i| (i as f32 * 0.3).sin()).collect(),
            ),
            0,
        );
        let x = g.embedding(table, &[1, 3, 0, 1]); // duplicate id: scatter-add overlap
        let w = g.param(
            Tensor::from_vec(vec![3, 3], (0..9).map(|i| (i as f32 * 0.7).cos()).collect()),
            1,
        );
        let h = g.matmul(x, w); // Nn with natural zeros possible
        let h2 = g.matmul_nt(h, w); // Nt register dots
        let p = g.softmax(h2);
        let loss = g.sum(p);
        (g, loss)
    }

    #[test]
    fn spec_is_exhaustive_and_declares_reductions() {
        assert!(matches!(
            spec(&OpKind::Sum).forward,
            Accumulation::Reduce(_)
        ));
        assert!(matches!(
            spec(&OpKind::Embedding { num_ids: 4 }).backward,
            Accumulation::ScatterAdd(_)
        ));
        assert!(matches!(
            spec(&OpKind::GatherRows { num_ids: 2 }).backward,
            Accumulation::ScatterAdd(_)
        ));
        assert_eq!(spec(&OpKind::Add).forward, Accumulation::None);
    }

    #[test]
    fn clean_tape_passes_forward_and_backward() {
        let (mut g, loss) = reduction_tape();
        assert!(check_forward(&g).is_empty());
        assert!(check_backward(&mut g, loss).is_empty());
    }

    #[test]
    fn batched_bmm_forward_is_canonical() {
        let mut g = Graph::new();
        let a = g.leaf(
            Tensor::from_vec(vec![2, 2, 3], (0..12).map(|i| (i as f32).sin()).collect()),
            false,
        );
        let b = g.leaf(
            Tensor::from_vec(vec![2, 3, 2], (0..12).map(|i| (i as f32).cos()).collect()),
            false,
        );
        let c = g.bmm(a, b, false);
        let d = g.bmm(c, c, true); // Nt orientation, [2,2,2]
        let _ = d;
        assert!(check_forward(&g).is_empty());
    }

    #[test]
    fn tampered_forward_is_flagged_d010() {
        let (mut g, loss) = reduction_tape();
        // Nudge the recorded sum by one ULP: simulates a kernel that
        // accumulated in a different order.
        g.tamper_value_for_test(loss.index(), |data| {
            data[0] = f32::from_bits(data[0].to_bits() ^ 1);
        });
        let findings = check_forward(&g);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].code, "D010");
        assert!(
            findings[0].message.contains("sum"),
            "{}",
            findings[0].message
        );
    }

    #[test]
    fn nonreproducible_backward_is_flagged_d011() {
        let (mut g, loss) = reduction_tape();
        // Runner that perturbs the embedding table's gradient on the
        // second execution only — a stand-in for a visit-order-dependent
        // scatter-add.
        let mut runs = 0;
        let findings = check_backward_with(&mut g, loss, |g, l| {
            g.backward(l);
            runs += 1;
            if runs == 2 {
                g.tamper_grad_for_test(0, |data| {
                    data[0] = f32::from_bits(data[0].to_bits() ^ 1);
                });
            }
        });
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].code, "D011");
        assert_eq!(findings[0].op, Some(0));
    }
}
