//! Parallel-safety auditor: source concurrency lints (`P0xx`) and the
//! static reduction-schedule certifier (`P010`).
//!
//! The determinism auditor (`crate::det`) proves single-thread runs are
//! bit-reproducible; this module is its multi-core counterpart. It has
//! two layers:
//!
//! **Layer 1 — concurrency lints**, token-level over the same
//! layout-preserving strip+lex infrastructure ([`crate::lexer`]):
//!
//! | code | finding |
//! |------|---------|
//! | P000 | `par-ok` allowlist annotation without a reason |
//! | P001 | `static mut` or shared static typed with interior mutability (`Cell`/`RefCell`/`UnsafeCell`/`Rc`) outside `thread_local!` |
//! | P002 | spawn closure capturing a name tainted as interior-mutable without synchronization |
//! | P003 | `Ordering::Relaxed` on an atomic that guards data (loads/stores/swaps of non-counter cells, any `compare_exchange`) |
//! | P004 | lock acquisition order that differs across functions (cycle in the workspace lock-order graph) |
//! | P005 | float accumulation (`sum`/`fold`/`product`/`+=`) inside a spawned closure, where join order is thread-dependent |
//! | P006 | channel/`Mutex`/`RwLock`/`Condvar`/`Barrier` inside the tape hot path — kernels must be fork-join with a declared schedule |
//! | P009 | stale `par-ok` annotation that no longer matches any finding |
//!
//! **Layer 2 — the schedule certifier** ([`certify`]): every parallel
//! kernel declares a [`tensor::sched::ReductionSchedule`] (split axis,
//! chunk ranges, fixed binary join tree). The certifier replays the tree
//! *symbolically* against the canonical per-`OpKind` accumulation order
//! declared in [`crate::order`]: reductions become expression trees over
//! abstract contributions, the sequential order is the left fold in
//! ascending-`k` order, and a schedule certifies only if its combined
//! expression is structurally identical to the sequential one — f32
//! addition is not associative, so structural identity is the only
//! grouping that is *bit*-equal (`(a+b)+c ≠ a+(b+c)` in ULPs, and even
//! `0.0 + x` is not an identity for `x = -0.0`). Splits along `m`/`n`
//! never chop a reduction chain, so they certify for any join tree;
//! splits along `k` fragment every chain into per-worker partial sums
//! whose re-combination is a reassociation, and the certifier rejects
//! them naming the first diverging contribution. Failures become `P010`.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::Path;

use tensor::sched::{JoinTree, ReductionSchedule, SplitAxis};

use crate::det::SourceFinding;
use crate::lexer::{drop_test_modules_spanned, is_ident, strip_and_lex};
use crate::suppress::Suppressions;

/// Tally of parallel-safety findings across a whole audit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParCounts {
    pub files: usize,
    pub suppressed: usize,
    pub p000: usize,
    pub p001: usize,
    pub p002: usize,
    pub p003: usize,
    pub p004: usize,
    pub p005: usize,
    pub p006: usize,
    /// Stale `par-ok` annotations (allowlist rot).
    pub p009: usize,
    /// Schedule-certification failures folded in by `par_audit`.
    pub p010: usize,
}

impl ParCounts {
    /// Records one source finding (suppressed findings count separately).
    pub fn record(&mut self, finding: &SourceFinding) {
        if finding.suppressed.is_some() {
            self.suppressed += 1;
            return;
        }
        match finding.code {
            "P000" => self.p000 += 1,
            "P001" => self.p001 += 1,
            "P002" => self.p002 += 1,
            "P003" => self.p003 += 1,
            "P004" => self.p004 += 1,
            "P005" => self.p005 += 1,
            "P006" => self.p006 += 1,
            "P009" => self.p009 += 1,
            other => panic!("unknown parallel-safety code {other}"),
        }
    }

    /// Records one schedule-certification failure (`P010`).
    pub fn record_schedule(&mut self, code: &str) {
        match code {
            "P010" => self.p010 += 1,
            other => panic!("unknown schedule certification code {other}"),
        }
    }

    /// Findings that fail the audit (suppressed ones do not).
    pub fn unsuppressed(&self) -> usize {
        self.p000
            + self.p001
            + self.p002
            + self.p003
            + self.p004
            + self.p005
            + self.p006
            + self.p009
            + self.p010
    }
}

impl fmt::Display for ParCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} files | P001:{} P002:{} P003:{} P004:{} P005:{} P006:{} P009:{} P010:{} | \
             {} allowed (par-ok), {} unreasoned (P000)",
            self.files,
            self.p001,
            self.p002,
            self.p003,
            self.p004,
            self.p005,
            self.p006,
            self.p009,
            self.p010,
            self.suppressed,
            self.p000,
        )
    }
}

/// Per-file scan options.
#[derive(Debug, Clone, Copy, Default)]
pub struct ParScanOptions {
    /// Tape hot path (`crates/tensor/src`, the packed-batch decode step):
    /// blocking primitives are forbidden outright there (P006) — parallel
    /// kernels must be fork-join under a declared schedule.
    pub hot_path: bool,
}

/// Interior-mutability markers for P001/P002. `Rc` rides along: it is not
/// interior-mutable itself but is never `Send`/`Sync`, so sharing it with
/// a spawned closure is the same class of bug.
const INTERIOR_MUTABLE: &[&str] = &["Cell", "RefCell", "UnsafeCell", "OnceCell", "Rc"];

/// Blocking/queueing primitives forbidden in the hot path (P006).
const BLOCKING_PRIMITIVES: &[&str] = &["Mutex", "RwLock", "Condvar", "Barrier", "mpsc", "channel"];

/// Atomic RMW methods that are order-insensitive counters by construction
/// (the add commutes); `Relaxed` is fine on these.
const COUNTER_RMW: &[&str] = &[
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
];

/// Atomic methods where `Relaxed` is suspect unless the cell is a counter.
const GUARD_METHODS: &[&str] = &["load", "store", "swap", "fetch_update"];

/// Receiver-name fragments that mark an atomic as a statistics counter
/// (monotonic, order-insensitive) rather than a data guard.
const COUNTER_NAMES: &[&str] = &[
    "count", "counter", "total", "seq", "tick", "hits", "misses", "bytes", "calls", "dropped",
    "epoch",
];

/// Type-path tokens skipped when walking left from an interior-mutable
/// type to the name it declares.
const TYPE_WRAPPERS: &[&str] = &[
    "<", "Vec", "Option", "Box", "Arc", "Rc", "std", "cell", "rc", "sync", "::", "&", "'", "mut",
];

/// Names in one file declared with interior-mutable types — the taint set
/// P002 checks spawn closures against.
fn collect_interior_mutable_names(texts: &[&str]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for i in 0..texts.len() {
        if !INTERIOR_MUTABLE.contains(&texts[i]) {
            continue;
        }
        let mut j = i;
        while j > 0 && TYPE_WRAPPERS.contains(&texts[j - 1]) {
            j -= 1;
        }
        if j == 0 {
            continue;
        }
        match texts[j - 1] {
            // `name: RefCell<…>` — struct field, fn arg, or typed let/static.
            ":" if j >= 2 && is_ident(texts[j - 2]) => {
                names.insert(texts[j - 2].to_string());
            }
            // `let [mut] name = RefCell::new(…)`.
            "=" => {
                let mut k = j - 1;
                while k > 0 && !is_ident(texts[k - 1]) && texts[k - 1] != "let" {
                    k -= 1;
                }
                if k >= 2 && is_ident(texts[k - 1]) {
                    let name = texts[k - 1];
                    let kw = texts[k - 2];
                    if kw == "let" || (kw == "mut" && k >= 3 && texts[k - 3] == "let") {
                        names.insert(name.to_string());
                    }
                }
            }
            _ => {}
        }
    }
    names
}

/// Token-index ranges covered by `thread_local! { … }` invocations: the
/// statics inside are per-thread storage, not shared state, so P001 must
/// not fire on them.
fn thread_local_ranges(texts: &[&str]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i + 2 < texts.len() {
        if texts[i] == "thread_local" && texts[i + 1] == "!" {
            let mut j = i + 2;
            while j < texts.len() && texts[j] != "{" {
                j += 1;
            }
            let start = j;
            let mut depth = 0i32;
            while j < texts.len() {
                match texts[j] {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            ranges.push((start, j));
            i = j + 1;
        } else {
            i += 1;
        }
    }
    ranges
}

/// Token-index ranges of `spawn(…)` call arguments — the closures P002
/// and P005 inspect. Matches both `thread::spawn(…)` and scoped
/// `scope.spawn(…)`.
fn spawn_ranges(texts: &[&str]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    for i in 0..texts.len() {
        if texts[i] != "spawn" || texts.get(i + 1) != Some(&"(") {
            continue;
        }
        let mut depth = 0i32;
        let mut j = i + 1;
        while j < texts.len() {
            match texts[j] {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        ranges.push((i + 1, j));
    }
    ranges
}

/// One directed lock-order edge: some function acquires `from` and then
/// `to` while scanning forward through its body.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockEdge {
    pub from: String,
    pub to: String,
    /// 1-based line of the second acquisition.
    pub line: usize,
}

/// Collects the lock-order edges of one file: per function body, the
/// receiver sequence of `.lock(` / `.read(` / `.write(` calls, paired in
/// acquisition order. Token-level scanning cannot see guard drops, so
/// sequential (non-nested) acquisitions also produce edges — that is the
/// conservative direction: a cycle among them still means two functions
/// disagree about lock order.
pub fn collect_lock_edges(text: &str) -> Vec<LockEdge> {
    let stripped = strip_and_lex(text);
    let toks = crate::lexer::drop_test_modules(stripped.tokens);
    let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
    let mut edges = Vec::new();
    let mut i = 0;
    while i < texts.len() {
        if texts[i] != "fn" {
            i += 1;
            continue;
        }
        // Find the function body (first brace after the signature).
        let mut j = i + 1;
        while j < texts.len() && texts[j] != "{" && texts[j] != ";" {
            j += 1;
        }
        if j >= texts.len() || texts[j] == ";" {
            i = j + 1;
            continue;
        }
        let body_start = j;
        let mut depth = 0i32;
        while j < texts.len() {
            match texts[j] {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let body_end = j;
        let mut acquired: Vec<(String, usize)> = Vec::new();
        for t in body_start..body_end {
            if texts[t] == "lock"
                && t >= 2
                && texts[t - 1] == "."
                && texts.get(t + 1) == Some(&"(")
                && is_ident(texts[t - 2])
            {
                acquired.push((texts[t - 2].to_string(), toks[t].line));
            }
        }
        for pair in acquired.windows(2) {
            if pair[0].0 != pair[1].0 {
                edges.push(LockEdge {
                    from: pair[0].0.clone(),
                    to: pair[1].0.clone(),
                    line: pair[1].1,
                });
            }
        }
        i = body_end + 1;
    }
    edges
}

/// Workspace-wide lock-order context for P004: the set of edges that
/// participate in a cycle.
#[derive(Debug, Clone, Default)]
pub struct ParContext {
    pub cyclic_edges: BTreeSet<(String, String)>,
}

impl ParContext {
    /// Builds the context from every file's edges: an edge `a → b` is
    /// cyclic when `b` can reach `a` through the global edge set — i.e.
    /// some other code path acquires the same locks in the opposite
    /// order, which is the classic ABBA deadlock shape.
    pub fn from_edges(edges: &[LockEdge]) -> ParContext {
        let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for e in edges {
            adj.entry(e.from.as_str())
                .or_default()
                .insert(e.to.as_str());
        }
        let reaches = |start: &str, goal: &str| -> bool {
            let mut seen = BTreeSet::new();
            let mut stack = vec![start];
            while let Some(node) = stack.pop() {
                if node == goal {
                    return true;
                }
                if !seen.insert(node) {
                    continue;
                }
                if let Some(next) = adj.get(node) {
                    stack.extend(next.iter().copied());
                }
            }
            false
        };
        let mut cyclic = BTreeSet::new();
        for e in edges {
            if reaches(e.to.as_str(), e.from.as_str()) {
                cyclic.insert((e.from.clone(), e.to.clone()));
            }
        }
        ParContext {
            cyclic_edges: cyclic,
        }
    }
}

/// Scans one file for parallel-safety findings against the workspace-wide
/// lock-order context.
pub fn scan_par_source(
    file: &str,
    text: &str,
    ctx: &ParContext,
    opts: ParScanOptions,
) -> Vec<SourceFinding> {
    let stripped = strip_and_lex(text);
    let mut supp = Suppressions::from_stripped(&stripped, "par-ok");
    let (toks, test_spans) = drop_test_modules_spanned(stripped.tokens);
    supp.discard_lines_in(&test_spans);
    let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();

    let mut findings = Vec::new();

    // P000: allowlist annotations must carry a reason.
    for line in supp.missing_reason_lines() {
        findings.push(SourceFinding {
            code: "P000",
            file: file.to_string(),
            line,
            message: "par-ok annotation without a reason; write `par-ok: <why this \
                      site is thread-safe>`"
                .to_string(),
            suppressed: None,
        });
    }

    let mut push = |code: &'static str, line: usize, message: String| {
        let suppressed = supp.consume(line);
        findings.push(SourceFinding {
            code,
            file: file.to_string(),
            line,
            message,
            suppressed,
        });
    };

    let tl_ranges = thread_local_ranges(&texts);
    let in_thread_local = |i: usize| {
        tl_ranges
            .iter()
            .any(|&(start, end)| (start..=end).contains(&i))
    };

    // P001: `static mut` and interior-mutable shared statics.
    for i in 0..toks.len() {
        if texts[i] != "static" || (i > 0 && texts[i - 1] == "'") || in_thread_local(i) {
            continue;
        }
        if texts.get(i + 1) == Some(&"mut") {
            let name = texts.get(i + 2).copied().unwrap_or("?");
            push(
                "P001",
                toks[i].line,
                format!(
                    "`static mut {name}`: unsynchronized shared mutable state; use an \
                     atomic, a lock, or thread_local!"
                ),
            );
            continue;
        }
        // Walk the declared type (after `:`, up to `=` or `;`).
        let mut j = i + 1;
        while j < texts.len() && texts[j] != ":" && texts[j] != ";" && texts[j] != "=" {
            j += 1;
        }
        if j >= texts.len() || texts[j] != ":" {
            continue;
        }
        let name = texts.get(i + 1).copied().unwrap_or("?");
        let mut t = j + 1;
        while t < texts.len() && texts[t] != "=" && texts[t] != ";" {
            if INTERIOR_MUTABLE.contains(&texts[t]) {
                push(
                    "P001",
                    toks[i].line,
                    format!(
                        "shared static `{name}` typed with non-Sync interior mutability \
                         (`{}`); use an atomic, a lock, or thread_local!",
                        texts[t]
                    ),
                );
                break;
            }
            t += 1;
        }
    }

    // P002 / P005: spawn-closure captures and float accumulation.
    let tainted = collect_interior_mutable_names(&texts);
    for (start, end) in spawn_ranges(&texts) {
        for i in start..end {
            if tainted.contains(texts[i]) {
                push(
                    "P002",
                    toks[i].line,
                    format!(
                        "spawned closure captures `{}`, declared with interior \
                         mutability but no synchronization; wrap it in a lock or keep \
                         it thread-local",
                        texts[i]
                    ),
                );
            }
            let is_float_reduce = ["sum", "fold", "product"].contains(&texts[i])
                && i > 0
                && texts[i - 1] == "."
                && texts.get(i + 1).is_some_and(|t| *t == "(" || *t == "::");
            if is_float_reduce || texts[i] == "+=" {
                push(
                    "P005",
                    toks[i].line,
                    format!(
                        "accumulation (`{}`) inside a spawned closure: per-thread \
                         partial results join in thread-completion order, which is \
                         not bit-reproducible; accumulate on the spawning thread \
                         under a certified schedule instead",
                        texts[i]
                    ),
                );
            }
        }
    }

    // P003: Relaxed ordering on atomics that guard data. One finding per
    // call site: `compare_exchange` passes two orderings, so dedupe on
    // the enclosing call's opening paren.
    let mut p003_sites = BTreeSet::new();
    for i in 0..toks.len() {
        if texts[i] != "Relaxed" || i < 2 || texts[i - 1] != "::" || texts[i - 2] != "Ordering" {
            continue;
        }
        // Walk left to the opening paren of the enclosing call, then read
        // `receiver . method (`.
        let mut depth = 0i32;
        let mut open = None;
        let mut j = i;
        while j > 0 {
            j -= 1;
            match texts[j] {
                ")" => depth += 1,
                "(" => {
                    depth -= 1;
                    if depth < 0 {
                        open = Some(j);
                        break;
                    }
                }
                _ => {}
            }
        }
        let Some(open) = open else { continue };
        if !p003_sites.insert(open) {
            continue;
        }
        let method = if open >= 1 { texts[open - 1] } else { "" };
        let receiver = if open >= 3 && texts[open - 2] == "." {
            texts[open - 3]
        } else {
            ""
        };
        if COUNTER_RMW.contains(&method) {
            continue; // commutative RMW: order cannot change the final value
        }
        let is_counter = COUNTER_NAMES
            .iter()
            .any(|frag| receiver.to_ascii_lowercase().contains(frag));
        if method.starts_with("compare_exchange") {
            push(
                "P003",
                toks[i].line,
                format!(
                    "`{receiver}.{method}` with Ordering::Relaxed: CAS loops \
                     coordinate ownership and need acquire/release edges"
                ),
            );
        } else if GUARD_METHODS.contains(&method) && !is_counter {
            push(
                "P003",
                toks[i].line,
                format!(
                    "`{receiver}.{method}` with Ordering::Relaxed: this atomic \
                     guards data, not a counter — unsynchronized readers may see \
                     stale state; use Acquire/Release or name it as a counter"
                ),
            );
        }
    }

    // P004: lock-order edges that participate in a workspace cycle.
    for edge in collect_lock_edges(text) {
        if ctx
            .cyclic_edges
            .contains(&(edge.from.clone(), edge.to.clone()))
        {
            push(
                "P004",
                edge.line,
                format!(
                    "lock order `{}` → `{}` conflicts with another code path \
                     acquiring them in the opposite order (ABBA deadlock); pick one \
                     global order",
                    edge.from, edge.to
                ),
            );
        }
    }

    // P006: blocking primitives in the tape hot path.
    if opts.hot_path {
        for i in 0..toks.len() {
            if BLOCKING_PRIMITIVES.contains(&texts[i])
                && texts
                    .get(i + 1)
                    .is_some_and(|t| *t == "::" || *t == "<" || *t == "(")
            {
                push(
                    "P006",
                    toks[i].line,
                    format!(
                        "`{}` in the tape hot path: kernels must be fork-join under \
                         a certified ReductionSchedule, never lock- or \
                         channel-synchronized",
                        texts[i]
                    ),
                );
            }
        }
    }

    // P009: reasoned annotations nothing consumed — the stale allowlist.
    for line in supp.stale_lines() {
        findings.push(SourceFinding {
            code: "P009",
            file: file.to_string(),
            line,
            message: "stale par-ok suppression: no parallel-safety finding on this or \
                      the following line; remove the annotation or re-audit the site"
                .to_string(),
            suppressed: None,
        });
    }

    findings.sort_by(|a, b| (a.line, a.code).cmp(&(b.line, b.code)));
    findings
}

/// The outcome of a workspace parallel-safety sweep.
#[derive(Debug, Clone, Default)]
pub struct ParAudit {
    /// Unsuppressed findings — any entry here fails the audit.
    pub findings: Vec<SourceFinding>,
    /// `par-ok`-allowlisted findings, kept visible in reports.
    pub allowed: Vec<SourceFinding>,
    pub counts: ParCounts,
}

/// Sweeps every `crates/*/src/**/*.rs` (plus the workspace root `src/`)
/// under `root`: pass 1 builds the workspace lock-order graph, pass 2
/// lints each file against it.
pub fn audit_par_sources(root: &Path) -> std::io::Result<ParAudit> {
    let sources = crate::lexer::workspace_sources(root)?;

    let mut all_edges = Vec::new();
    for (_, text) in &sources {
        all_edges.extend(collect_lock_edges(text));
    }
    let ctx = ParContext::from_edges(&all_edges);

    let mut audit = ParAudit::default();
    for (rel, text) in &sources {
        let opts = ParScanOptions {
            hot_path: rel.starts_with("crates/tensor/src/") || rel == "crates/nn/src/batch.rs",
        };
        for finding in scan_par_source(rel, text, &ctx, opts) {
            audit.counts.record(&finding);
            if finding.suppressed.is_some() {
                audit.allowed.push(finding);
            } else {
                audit.findings.push(finding);
            }
        }
        audit.counts.files += 1;
    }
    Ok(audit)
}

// ---------------------------------------------------------------------------
// Layer 2: the static schedule certifier.
// ---------------------------------------------------------------------------

/// Proof that a schedule's combined reduction order is bit-equivalent to
/// the canonical sequential order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    pub kernel: &'static str,
    pub shape: (usize, usize, usize),
    pub workers: usize,
    /// The canonical order (from [`crate::order::spec`]) the schedule was
    /// proven equivalent to.
    pub canonical: &'static str,
    /// Why the equivalence holds.
    pub argument: String,
}

/// Why a schedule failed certification. Rendered as a `P010` finding by
/// `par_audit`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleRejection {
    pub kernel: &'static str,
    pub shape: (usize, usize, usize),
    pub reason: String,
}

impl fmt::Display for ScheduleRejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (m, k, n) = self.shape;
        write!(
            f,
            "error[P010] schedule {} ({m}x{k}x{n}): {}",
            self.kernel, self.reason
        )
    }
}

/// Symbolic reduction expression over abstract contributions: the value
/// of one output element as a tree of f32 additions. Structural equality
/// is bit-equality — f32 `+` is commutative here only in the trivial
/// sense that we never commute; any regrouping changes rounding.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Expr {
    /// The zero-initialized accumulator a reduction starts from.
    Zero,
    /// The `i`-th contribution along the reduction axis (`a[i]·b[i]`).
    Contrib(usize),
    /// `left + right`, evaluated left-to-right.
    Add(Box<Expr>, Box<Expr>),
}

/// The canonical sequential reduction: a left fold of contributions
/// `lo..hi` in ascending order into a zero-initialized accumulator.
fn left_fold(lo: usize, hi: usize) -> Expr {
    let mut acc = Expr::Zero;
    for i in lo..hi {
        acc = Expr::Add(Box::new(acc), Box::new(Expr::Contrib(i)));
    }
    acc
}

/// The expression a schedule actually computes for one output element
/// under a `k`-axis split: each worker left-folds its own chunk from a
/// fresh zero accumulator, then the join tree adds the partial sums.
fn schedule_expr(chunks: &[(usize, usize)], join: &JoinTree) -> Expr {
    match join {
        JoinTree::Leaf(c) => {
            let (lo, hi) = chunks[*c];
            left_fold(lo, hi)
        }
        JoinTree::Node(l, r) => Expr::Add(
            Box::new(schedule_expr(chunks, l)),
            Box::new(schedule_expr(chunks, r)),
        ),
    }
}

/// Records, for every contribution, the *accumulation context* it is
/// added into: how many zero-initialized accumulators and which other
/// contributions are already folded in to its left at that moment.
/// Returns `(zeros, contribs)` contained in `e`.
fn contexts(
    e: &Expr,
    left_zeros: usize,
    left_set: &BTreeSet<usize>,
    out: &mut BTreeMap<usize, (usize, BTreeSet<usize>)>,
) -> (usize, BTreeSet<usize>) {
    match e {
        Expr::Zero => (1, BTreeSet::new()),
        Expr::Contrib(i) => {
            out.insert(*i, (left_zeros, left_set.clone()));
            (0, BTreeSet::from([*i]))
        }
        Expr::Add(l, r) => {
            let (lz, ls) = contexts(l, left_zeros, left_set, out);
            let mut right_left = left_set.clone();
            right_left.extend(ls.iter().copied());
            let (rz, rs) = contexts(r, left_zeros + lz, &right_left, out);
            let mut all = ls;
            all.extend(rs);
            (lz + rz, all)
        }
    }
}

/// First contribution whose accumulation context diverges from the
/// canonical sequential left fold, or `None` if the schedule replays it
/// exactly. Sequential context for contribution `i` is one accumulator
/// and exactly `{0..i}` to its left; a fresh per-worker partial sum shows
/// up as a second zero accumulator in the context of the first
/// contribution that lands in it.
fn first_divergence(k: usize, scheduled: &Expr) -> Option<usize> {
    let mut ctxs = BTreeMap::new();
    contexts(scheduled, 0, &BTreeSet::new(), &mut ctxs);
    for i in 0..k {
        let expected: BTreeSet<usize> = (0..i).collect();
        match ctxs.get(&i) {
            Some((zeros, set)) if *zeros == 1 && *set == expected => {}
            _ => return Some(i),
        }
    }
    None
}

/// Certifies that executing `schedule` is bit-equivalent to the canonical
/// sequential kernel, or explains exactly where the orders diverge.
pub fn certify(schedule: &ReductionSchedule) -> Result<Certificate, ScheduleRejection> {
    let reject = |reason: String| ScheduleRejection {
        kernel: schedule.kernel,
        shape: schedule.shape,
        reason,
    };

    // The chunks must tile the split axis: contiguous, ascending,
    // non-empty, covering `[0, len)`.
    let len = schedule.axis_len();
    if schedule.chunks.is_empty() {
        return Err(reject("schedule declares no chunks".to_string()));
    }
    let mut expect = 0usize;
    for &(lo, hi) in &schedule.chunks {
        if lo != expect || hi <= lo {
            return Err(reject(format!(
                "chunks must be contiguous ascending non-empty ranges; found \
                 [{lo}, {hi}) where [{expect}, …) was expected"
            )));
        }
        expect = hi;
    }
    if expect != len {
        return Err(reject(format!(
            "chunks cover [0, {expect}) but the {} axis has length {len}",
            schedule.split.as_str()
        )));
    }

    // The join tree must reference each chunk exactly once.
    let leaves = schedule.join.leaves();
    let mut seen = vec![false; schedule.chunks.len()];
    for &leaf in &leaves {
        if leaf >= seen.len() || seen[leaf] {
            return Err(reject(format!(
                "join tree references chunk {leaf} {}",
                if leaf >= seen.len() {
                    "which does not exist"
                } else {
                    "more than once"
                }
            )));
        }
        seen[leaf] = true;
    }
    if leaves.len() != schedule.chunks.len() {
        return Err(reject(format!(
            "join tree combines {} chunks but {} are declared",
            leaves.len(),
            schedule.chunks.len()
        )));
    }

    let canonical = crate::order::matmul_canonical_order(schedule.orient);
    let (_, k, _) = schedule.shape;

    match schedule.split {
        // Output-axis splits never break a reduction chain: every C[i,j]
        // keeps its full ascending-k fold inside exactly one worker, and
        // workers write disjoint outputs, so join order is irrelevant to
        // the bits.
        SplitAxis::M | SplitAxis::N => Ok(Certificate {
            kernel: schedule.kernel,
            shape: schedule.shape,
            workers: schedule.chunks.len(),
            canonical,
            argument: format!(
                "split along output axis `{}`: each output element's full \
                 ascending-k reduction chain stays inside one worker, outputs are \
                 disjoint, so any join order is bit-equal to sequential",
                schedule.split.as_str()
            ),
        }),
        // A k-split fragments every reduction chain into per-worker
        // partial sums. Replay the join symbolically and demand structural
        // identity with the sequential left fold.
        SplitAxis::K => {
            let sched = schedule_expr(&schedule.chunks, &schedule.join);
            match first_divergence(k, &sched) {
                None => Ok(Certificate {
                    kernel: schedule.kernel,
                    shape: schedule.shape,
                    workers: schedule.chunks.len(),
                    canonical,
                    argument: "k-split join tree replays the exact sequential left \
                               fold"
                        .to_string(),
                }),
                Some(i) => Err(reject(format!(
                    "k-axis split is not bit-equivalent to the canonical \
                     '{canonical}' order: first diverging reduction at contribution \
                     k={i}, which is grouped into a separate partial sum instead of \
                     folding into the running accumulator (f32 addition is not \
                     associative; even a zero-initialized partial changes -0.0 \
                     handling)"
                ))),
            }
        }
    }
}

/// Certifies every schedule the dispatch layer declares for the given
/// launch shapes and worker counts — the sweep `par_audit` runs and CI
/// gates on.
pub fn certify_declared(
    shapes: &[(usize, usize, usize)],
    worker_counts: &[usize],
) -> Vec<Result<Certificate, ScheduleRejection>> {
    let mut out = Vec::new();
    for &(m, k, n) in shapes {
        for &w in worker_counts {
            for schedule in tensor::sched::declared_schedules(m, k, n, w) {
                out.push(certify(&schedule));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::MmOrient;

    fn scan(text: &str) -> Vec<SourceFinding> {
        let ctx = ParContext::from_edges(&collect_lock_edges(text));
        scan_par_source("test.rs", text, &ctx, ParScanOptions::default())
    }

    fn scan_hot(text: &str) -> Vec<SourceFinding> {
        let ctx = ParContext::from_edges(&collect_lock_edges(text));
        scan_par_source("test.rs", text, &ctx, ParScanOptions { hot_path: true })
    }

    fn unsuppressed(text: &str) -> Vec<SourceFinding> {
        scan(text)
            .into_iter()
            .filter(|f| f.suppressed.is_none())
            .collect()
    }

    #[test]
    fn p001_static_mut_and_interior_mutability() {
        let f = unsuppressed("static mut COUNTER: usize = 0;");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].code, "P001");

        let f = unsuppressed("static CACHE: RefCell<Vec<u32>> = RefCell::new(Vec::new());");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].code, "P001");
        assert!(f[0].message.contains("CACHE"));
    }

    #[test]
    fn p001_allows_sync_statics_and_thread_local() {
        let src = "
            static ENABLED: AtomicBool = AtomicBool::new(false);
            static TABLE: Mutex<Vec<u32>> = Mutex::new(Vec::new());
            thread_local! {
                static STACK: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
            }
            fn f(x: &'static str) -> &'static str { x }
        ";
        assert!(unsuppressed(src).is_empty(), "{:?}", unsuppressed(src));
    }

    #[test]
    fn p002_spawn_capturing_interior_mutable_state() {
        let src = "
            fn f() {
                let shared = RefCell::new(0u32);
                std::thread::spawn(move || {
                    shared.borrow_mut();
                });
            }
        ";
        let f = unsuppressed(src);
        assert!(f.iter().any(|f| f.code == "P002"), "{f:?}");
        assert!(f[0].message.contains("shared"));
    }

    #[test]
    fn p003_relaxed_on_data_guard_but_not_counters() {
        let flagged = "
            fn f() {
                let ready = READY.load(Ordering::Relaxed);
                STATE.store(1, Ordering::Relaxed);
                SLOT.compare_exchange(0, 1, Ordering::Relaxed, Ordering::Relaxed);
            }
        ";
        let f = unsuppressed(flagged);
        assert_eq!(f.iter().filter(|f| f.code == "P003").count(), 3, "{f:?}");

        let clean = "
            fn f() {
                HITS.fetch_add(1, Ordering::Relaxed);
                let n = step_count.load(Ordering::Relaxed);
                total_bytes.store(n, Ordering::Relaxed);
            }
        ";
        assert!(unsuppressed(clean).is_empty(), "{:?}", unsuppressed(clean));
    }

    #[test]
    fn p004_abba_lock_order_cycle() {
        let src = "
            fn ab(a: &Mutex<u32>, b: &Mutex<u32>) {
                let x = a.lock().unwrap();
                let y = b.lock().unwrap();
            }
            fn ba(a: &Mutex<u32>, b: &Mutex<u32>) {
                let y = b.lock().unwrap();
                let x = a.lock().unwrap();
            }
        ";
        let f = unsuppressed(src);
        assert_eq!(f.iter().filter(|f| f.code == "P004").count(), 2, "{f:?}");
        assert!(f[0].message.contains("opposite order"));
    }

    #[test]
    fn p004_consistent_order_is_clean() {
        let src = "
            fn one(a: &Mutex<u32>, b: &Mutex<u32>) {
                let x = a.lock().unwrap();
                let y = b.lock().unwrap();
            }
            fn two(a: &Mutex<u32>, b: &Mutex<u32>) {
                let x = a.lock().unwrap();
                let y = b.lock().unwrap();
            }
        ";
        assert!(unsuppressed(src).is_empty());
    }

    #[test]
    fn p005_float_accumulation_in_spawn() {
        let src = "
            fn f(xs: Vec<f32>) {
                std::thread::spawn(move || {
                    let total: f32 = xs.iter().sum();
                    total
                });
            }
        ";
        let f = unsuppressed(src);
        assert!(f.iter().any(|f| f.code == "P005"), "{f:?}");
    }

    #[test]
    fn p006_blocking_primitives_only_in_hot_path() {
        let src = "
            fn f() {
                let m = Mutex::new(0u32);
                let (tx, rx) = std::sync::mpsc::channel::<u32>();
            }
        ";
        assert!(unsuppressed(src).is_empty(), "cold path allows Mutex");
        let f: Vec<SourceFinding> = scan_hot(src)
            .into_iter()
            .filter(|f| f.suppressed.is_none())
            .collect();
        assert!(
            f.iter().filter(|f| f.code == "P006").count() >= 2,
            "hot path forbids Mutex and channels: {f:?}"
        );
    }

    #[test]
    fn p000_reasonless_and_p009_stale_annotations() {
        let f = unsuppressed("fn f() { let x = 1; } // par-ok");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].code, "P000");

        let f = unsuppressed("fn f() { let x = 1; } // par-ok: nothing here anymore");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].code, "P009");
    }

    #[test]
    fn par_ok_with_reason_suppresses() {
        let src = "
            fn f() {
                // par-ok: config cell read once at startup, never raced
                let ready = READY.load(Ordering::Relaxed);
            }
        ";
        let all = scan(src);
        assert_eq!(all.len(), 1, "{all:?}");
        assert!(all[0].suppressed.is_some());
        assert!(unsuppressed(src).is_empty());
    }

    // -- certifier ---------------------------------------------------------

    fn m_split(workers: usize) -> ReductionSchedule {
        tensor::sched::declared_schedules(65, 130, 257, workers)
            .into_iter()
            .next()
            .unwrap()
    }

    #[test]
    fn m_split_schedules_certify_for_all_shape_classes() {
        let shapes = [(1, 1, 1), (3, 63, 5), (7, 64, 129), (65, 130, 257)];
        for result in certify_declared(&shapes, &[1, 2, 4, 8]) {
            let cert = result.expect("declared M-split schedules must certify");
            assert!(!cert.canonical.is_empty());
            assert!(cert.argument.contains("ascending-k"));
        }
    }

    #[test]
    fn k_split_left_comb_is_rejected_as_partial_sum_regrouping() {
        let mut s = m_split(2);
        s.split = SplitAxis::K;
        s.chunks = vec![(0, 65), (65, 130)];
        s.join = JoinTree::left_spine(2);
        let err = certify(&s).expect_err("k-split partial sums are never bit-equal");
        assert!(err.reason.contains("k=65"), "{}", err.reason);
        assert!(
            err.reason.contains("first diverging reduction"),
            "{}",
            err.reason
        );
    }

    #[test]
    fn deliberately_reassociated_join_tree_is_rejected_naming_the_divergence() {
        // A balanced tree over four k-chunks: (S0 ⊕ S1) ⊕ (S2 ⊕ S3).
        // Sequential order folds contribution 33 into the running
        // accumulator; this tree groups it into a separate partial first.
        let mut s = m_split(4);
        s.split = SplitAxis::K;
        s.chunks = vec![(0, 33), (33, 66), (66, 98), (98, 130)];
        s.join = JoinTree::Node(
            Box::new(JoinTree::Node(
                Box::new(JoinTree::Leaf(0)),
                Box::new(JoinTree::Leaf(1)),
            )),
            Box::new(JoinTree::Node(
                Box::new(JoinTree::Leaf(2)),
                Box::new(JoinTree::Leaf(3)),
            )),
        );
        let err = certify(&s).expect_err("reassociated tree must be rejected");
        assert!(err.reason.contains("k=33"), "{}", err.reason);
        assert!(err.to_string().contains("P010"));
    }

    #[test]
    fn malformed_tilings_and_trees_are_rejected() {
        let mut s = m_split(2);
        s.chunks = vec![(0, 30), (40, 65)]; // gap
        assert!(certify(&s).is_err());

        let mut s = m_split(2);
        s.chunks = vec![(0, 30), (30, 60)]; // short of m=65
        assert!(certify(&s).is_err());

        let mut s = m_split(2);
        s.join = JoinTree::Node(
            Box::new(JoinTree::Leaf(0)),
            Box::new(JoinTree::Leaf(0)), // chunk 0 twice, chunk 1 never
        );
        assert!(certify(&s).is_err());
    }

    #[test]
    fn single_chunk_k_split_is_the_degenerate_sequential_case() {
        let mut s = m_split(1);
        s.split = SplitAxis::K;
        s.chunks = vec![(0, 130)];
        s.join = JoinTree::Leaf(0);
        let cert = certify(&s).expect("one k-chunk IS the sequential fold");
        assert_eq!(cert.workers, 1);
    }

    #[test]
    fn counts_tally_and_display() {
        let mut c = ParCounts::default();
        c.record(&SourceFinding {
            code: "P003",
            file: "x.rs".into(),
            line: 1,
            message: String::new(),
            suppressed: None,
        });
        c.record(&SourceFinding {
            code: "P001",
            file: "x.rs".into(),
            line: 2,
            message: String::new(),
            suppressed: Some("audited".into()),
        });
        c.record_schedule("P010");
        assert_eq!(c.unsuppressed(), 2);
        assert_eq!(c.suppressed, 1);
        let text = c.to_string();
        assert!(text.contains("P003:1"), "{text}");
        assert!(text.contains("P010:1"), "{text}");
    }

    #[test]
    fn certificate_cites_the_order_spec() {
        let cert = certify(&m_split(4)).unwrap();
        assert_eq!(
            cert.canonical,
            crate::order::matmul_canonical_order(MmOrient::Nn)
        );
        assert_eq!(cert.workers, 4);
    }
}
