//! Per-family suppression bookkeeping shared by the determinism (`det-ok`)
//! and parallel-safety (`par-ok`) auditors.
//!
//! Both families have the same contract: an annotation on the finding's
//! line (or the line above) silences the finding, a reason after the
//! colon is mandatory (reasonless annotations are themselves findings:
//! D000 / P000), and an annotation that no longer matches any finding is
//! *stale* and flagged (D009 / P009) so allowlists cannot rot silently.

use crate::lexer::Stripped;
use std::collections::{BTreeMap, BTreeSet};

/// The suppression annotations of one family within one file, with usage
/// tracking for stale-allowlist detection.
pub struct Suppressions {
    family: &'static str,
    by_line: BTreeMap<usize, String>,
    used: BTreeSet<usize>,
}

impl Suppressions {
    /// Extracts one family's annotations from a stripped file.
    pub fn from_stripped(stripped: &Stripped, family: &'static str) -> Suppressions {
        Suppressions {
            family,
            by_line: stripped.suppress.get(family).cloned().unwrap_or_default(),
            used: BTreeSet::new(),
        }
    }

    pub fn family(&self) -> &'static str {
        self.family
    }

    /// Looks up a *reasoned* annotation covering `line` (same line or the
    /// line above) and marks it used. Returns the annotation's reason.
    /// Reasonless annotations never suppress — they are findings
    /// themselves (see [`Suppressions::missing_reason_lines`]).
    pub fn consume(&mut self, line: usize) -> Option<String> {
        let at = [line, line.wrapping_sub(1)]
            .into_iter()
            .find(|l| self.by_line.get(l).is_some_and(|r| !r.is_empty()))?;
        self.used.insert(at);
        Some(self.by_line[&at].clone())
    }

    /// Drops annotations inside the given line spans (inclusive). Used to
    /// ignore annotations in `#[cfg(test)]` modules, which the scanners
    /// never lint — an annotation there can neither suppress nor go stale.
    pub fn discard_lines_in(&mut self, spans: &[(usize, usize)]) {
        self.by_line
            .retain(|line, _| !spans.iter().any(|&(a, b)| (a..=b).contains(line)));
    }

    /// Annotation lines whose reason is empty (`// det-ok` with no text
    /// after it). One finding per line: D000 / P000 depending on family.
    pub fn missing_reason_lines(&self) -> Vec<usize> {
        self.by_line
            .iter()
            .filter(|(_, reason)| reason.is_empty())
            .map(|(line, _)| *line)
            .collect()
    }

    /// Reasoned annotation lines that no finding consumed: the stale
    /// allowlist (D009 / P009 depending on family).
    pub fn stale_lines(&self) -> Vec<usize> {
        self.by_line
            .iter()
            .filter(|(line, reason)| !reason.is_empty() && !self.used.contains(line))
            .map(|(line, _)| *line)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::strip_and_lex;

    fn det(src: &str) -> Suppressions {
        Suppressions::from_stripped(&strip_and_lex(src), "det-ok")
    }

    #[test]
    fn consume_matches_same_line_and_line_above() {
        let mut s = det("x(); // det-ok: same line\n// det-ok: line above\ny();\n");
        assert_eq!(s.consume(1).as_deref(), Some("same line"));
        assert_eq!(s.consume(3).as_deref(), Some("line above"));
        assert!(s.stale_lines().is_empty());
    }

    #[test]
    fn discarded_lines_cannot_suppress_or_go_stale() {
        let mut s = det("a(); // det-ok: inside tests\nb();\n");
        s.discard_lines_in(&[(1, 1)]);
        assert_eq!(s.consume(1), None);
        assert!(s.stale_lines().is_empty());
    }

    #[test]
    fn reasonless_annotation_never_suppresses() {
        let mut s = det("x(); // det-ok\n");
        assert_eq!(s.consume(1), None);
        assert_eq!(s.missing_reason_lines(), vec![1]);
        // Reasonless annotations are not *stale* — they are already P000/D000.
        assert!(s.stale_lines().is_empty());
    }

    #[test]
    fn unconsumed_reasoned_annotation_is_stale() {
        let s = det("let a = 1; // det-ok: nothing here triggers anything\n");
        assert_eq!(s.stale_lines(), vec![1]);
    }

    #[test]
    fn families_are_independent() {
        let src = "x(); // det-ok: for det\n\ny(); // par-ok: for par\n";
        let stripped = strip_and_lex(src);
        let mut d = Suppressions::from_stripped(&stripped, "det-ok");
        let mut p = Suppressions::from_stripped(&stripped, "par-ok");
        assert_eq!(d.consume(1).as_deref(), Some("for det"));
        assert_eq!(d.consume(3), None);
        assert_eq!(p.consume(3).as_deref(), Some("for par"));
        assert_eq!(p.consume(1), None);
    }
}
