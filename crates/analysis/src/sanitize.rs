//! Pass 3: the opt-in runtime numeric sanitizer.
//!
//! Instead of unconditional `is_finite` assertions inside the hot kernels
//! (which every release-mode step would pay for), numeric checking is a
//! separate pass over a recorded tape, run on the schedule the caller
//! picks via [`SanitizerMode`]. When a NaN or Inf is found, the diagnostic
//! names the first offending op and attaches its producing-op backtrace —
//! the tape equivalent of a stack trace.
//!
//! Codes: `N001` non-finite forward value, `N002` non-finite gradient.

use tensor::kernels::first_nonfinite;
use tensor::Graph;

use crate::{backtrace, Diagnostic, Severity};

const BACKTRACE_DEPTH: usize = 6;

/// When the numeric sanitizer scans a training step's tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SanitizerMode {
    /// Never scan (the release-mode default cost: zero).
    Off,
    /// Scan only step 0 — catches init-time blowups for one step's cost.
    FirstStep,
    /// Scan every `n`-th step (`EveryN(1)` scans all steps).
    EveryN(usize),
}

impl SanitizerMode {
    /// Whether a scan should run at `step` (0-based).
    pub fn active_at(self, step: usize) -> bool {
        match self {
            SanitizerMode::Off => false,
            SanitizerMode::FirstStep => step == 0,
            SanitizerMode::EveryN(n) => n != 0 && step.is_multiple_of(n),
        }
    }

    /// Parses `off`, `first`, or `every:<n>` (case-insensitive).
    pub fn parse(s: &str) -> Option<SanitizerMode> {
        let s = s.trim().to_ascii_lowercase();
        match s.as_str() {
            "off" => Some(SanitizerMode::Off),
            "first" => Some(SanitizerMode::FirstStep),
            _ => s
                .strip_prefix("every:")
                .and_then(|n| n.parse().ok())
                .map(SanitizerMode::EveryN),
        }
    }

    /// Reads `DATAVIST5_SANITIZE`, defaulting to [`SanitizerMode::FirstStep`]
    /// (one scanned step per run is cheap and catches init-time blowups).
    pub fn from_env() -> SanitizerMode {
        std::env::var("DATAVIST5_SANITIZE")
            .ok()
            .and_then(|v| SanitizerMode::parse(&v))
            .unwrap_or(SanitizerMode::FirstStep)
    }
}

fn classify(v: f32) -> &'static str {
    if v.is_nan() {
        "NaN"
    } else if v == f32::INFINITY {
        "+Inf"
    } else {
        "-Inf"
    }
}

/// Scans every node's forward value and (if present) gradient for
/// non-finite elements. Diagnostics come out in tape order, so the first
/// one is the most upstream offender — the root cause, not the fallout.
pub fn scan(g: &Graph) -> Vec<Diagnostic> {
    let mut diagnostics = Vec::new();
    for view in g.op_views() {
        let value = g.node_value(view.index);
        if let Some(e) = first_nonfinite(value.data()) {
            diagnostics.push(Diagnostic {
                code: "N001",
                severity: Severity::Error,
                op: Some(view.index),
                message: format!(
                    "#{} {}: {} in forward value at element {e} of {:?}",
                    view.index,
                    view.kind.name(),
                    classify(value.data()[e]),
                    view.shape
                ),
                backtrace: backtrace(g, view.index, BACKTRACE_DEPTH),
            });
        }
        if let Some(grad) = g.node_grad(view.index) {
            if let Some(e) = first_nonfinite(grad.data()) {
                diagnostics.push(Diagnostic {
                    code: "N002",
                    severity: Severity::Error,
                    op: Some(view.index),
                    message: format!(
                        "#{} {}: {} in gradient at element {e} of {:?}",
                        view.index,
                        view.kind.name(),
                        classify(grad.data()[e]),
                        view.shape
                    ),
                    backtrace: backtrace(g, view.index, BACKTRACE_DEPTH),
                });
            }
        }
    }
    diagnostics
}

/// The first (most upstream) numeric offender, if any — what a training
/// loop reports before aborting the run.
pub fn first_offender(g: &Graph) -> Option<Diagnostic> {
    scan(g).into_iter().next()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::Tensor;

    #[test]
    fn mode_schedules() {
        assert!(!SanitizerMode::Off.active_at(0));
        assert!(SanitizerMode::FirstStep.active_at(0));
        assert!(!SanitizerMode::FirstStep.active_at(1));
        assert!(SanitizerMode::EveryN(3).active_at(0));
        assert!(!SanitizerMode::EveryN(3).active_at(2));
        assert!(SanitizerMode::EveryN(3).active_at(6));
        assert!(!SanitizerMode::EveryN(0).active_at(0));
    }

    #[test]
    fn mode_parsing() {
        assert_eq!(SanitizerMode::parse("off"), Some(SanitizerMode::Off));
        assert_eq!(
            SanitizerMode::parse("FIRST"),
            Some(SanitizerMode::FirstStep)
        );
        assert_eq!(
            SanitizerMode::parse("every:5"),
            Some(SanitizerMode::EveryN(5))
        );
        assert_eq!(SanitizerMode::parse("every:x"), None);
        assert_eq!(SanitizerMode::parse("sometimes"), None);
    }

    #[test]
    fn clean_graph_passes_the_scan() {
        let mut g = Graph::new();
        let x = g.leaf(
            Tensor::from_vec(vec![2, 2], vec![1.0, -2.0, 3.0, -4.0]),
            true,
        );
        let y = g.tanh(x);
        let loss = g.sum(y);
        g.backward(loss);
        assert!(scan(&g).is_empty());
    }

    #[test]
    fn injected_nan_is_caught_with_backtrace() {
        let mut g = Graph::new();
        let x = g.leaf(
            Tensor::from_vec(vec![2, 2], vec![1.0, f32::NAN, 3.0, 4.0]),
            false,
        );
        let y = g.scale(x, 2.0);
        let _loss = g.sum(y);
        let diags = scan(&g);
        let first = &diags[0];
        assert_eq!(first.code, "N001");
        assert_eq!(first.op, Some(x.index()));
        assert!(first.message.contains("NaN"), "{}", first.message);
        assert!(first.message.contains("element 1"), "{}", first.message);
        // Fallout at the relu is also reported, but only after the cause.
        assert!(diags.iter().any(|d| d.op == Some(y.index())));
    }

    #[test]
    fn infinite_gradient_is_caught() {
        let mut g = Graph::new();
        let huge = g.leaf(Tensor::from_vec(vec![1], vec![f32::INFINITY]), false);
        let p = g.param(Tensor::from_vec(vec![1], vec![2.0]), 0);
        let y = g.mul(p, huge);
        let loss = g.sum(y);
        g.backward(loss);
        assert!(scan(&g)
            .iter()
            .any(|d| d.code == "N002" && d.op == Some(p.index())));
    }
}
