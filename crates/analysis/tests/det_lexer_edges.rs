//! Lexer edge cases for the source auditors: constructs Rust's grammar
//! allows that a naive strip+lex would mis-tokenize, each paired with
//! content that *would* be a D- or P-finding if it leaked out of the
//! literal or comment it lives in. Every scan here must be clean — a
//! false positive on any of these means the shared lexer regressed.

use analysis::det::{scan_source, GlobalTaint, ScanOptions};
use analysis::par::{scan_par_source, ParContext, ParScanOptions};
use analysis::SourceFinding;

fn det_findings(src: &str) -> Vec<SourceFinding> {
    scan_source(
        "edge.rs",
        src,
        &GlobalTaint::default(),
        ScanOptions::default(),
    )
    .into_iter()
    .filter(|f| f.suppressed.is_none())
    .collect()
}

fn par_findings(src: &str) -> Vec<SourceFinding> {
    scan_par_source(
        "edge.rs",
        src,
        &ParContext::default(),
        ParScanOptions::default(),
    )
    .into_iter()
    .filter(|f| f.suppressed.is_none())
    .collect()
}

fn assert_clean(src: &str) {
    let d = det_findings(src);
    assert!(d.is_empty(), "false-positive det findings: {d:?}");
    let p = par_findings(src);
    assert!(p.is_empty(), "false-positive par findings: {p:?}");
}

#[test]
fn raw_strings_hide_sink_and_static_tokens() {
    assert_clean(
        r##"
        fn f() -> &'static str {
            let doc = r"Instant::now() and static mut COUNTER";
            let hashed = r#"for (k, v) in map.iter() { write!(out, "{k}") }"#;
            doc
        }
        "##,
    );
    // Deeper hash fences: a "# inside an r##"…"## literal stays literal.
    let deep = "fn f() { let s = r##\"quotes \"inside\"# one literal\"##; }\n";
    assert_clean(deep);
}

#[test]
fn raw_string_hash_depths_terminate_correctly() {
    // r#"…"# must not close on a bare quote, and must close on "#.
    let src = "fn f() { let a = r#\"one \" two\"#; let b = r\"plain\"; }\n";
    assert_clean(src);
    // Content after the closing delimiter is code again: a real finding
    // there must still fire.
    let live = "fn f() { let a = r#\"text\"#; let t = std::time::Instant::now(); }\n";
    let d = det_findings(live);
    assert_eq!(d.len(), 1, "{d:?}");
    assert_eq!(d[0].code, "D003");
}

#[test]
fn nested_block_comments_strip_fully() {
    assert_clean(
        "
        /* outer /* inner Instant::now() */ still a comment:
           static mut X: u32 = 0; */
        fn f() {}
        ",
    );
    // Unbalanced-looking but legal: depth returns to zero exactly once.
    let live = "/* /* */ */ fn f() { let e = std::env::var(\"HOME\"); }\n";
    let d = det_findings(live);
    assert_eq!(d.len(), 1, "{d:?}");
    assert_eq!(d[0].code, "D004");
}

#[test]
fn byte_strings_and_byte_chars_are_literals() {
    assert_clean(
        r#"
        fn f() -> usize {
            let raw = b"static mut not code";
            let braw = br"Instant::now()";
            let ch = b'x';
            raw.len() + braw.len() + ch as usize
        }
        "#,
    );
}

#[test]
fn char_literals_and_lifetimes_disambiguate() {
    // '"' must not open a string; 'a as a lifetime must not open a char.
    assert_clean(
        "
        fn f<'a>(x: &'a str) -> (char, char, &'a str) {
            let quote = '\"';
            let escaped = '\\'';
            (quote, escaped, x)
        }
        ",
    );
}

#[test]
fn cfg_test_submodules_are_dropped_at_any_depth() {
    // Findings inside #[cfg(test)] modules — including nested ones — are
    // out of scope: test code may use clocks and env freely.
    assert_clean(
        "
        fn prod() {}

        #[cfg(test)]
        mod tests {
            fn helper() {
                let t = std::time::Instant::now();
            }
            mod nested {
                fn deeper() {
                    let e = std::env::var(\"HOME\");
                    static mut SCRATCH: u32 = 0;
                }
            }
        }
        ",
    );
    // …but code after the test module is live again.
    let live = "
        #[cfg(test)]
        mod tests { fn t() { let i = std::time::Instant::now(); } }
        fn prod() { let i = std::time::Instant::now(); }
    ";
    let d = det_findings(live);
    assert_eq!(d.len(), 1, "{d:?}");
    assert_eq!(d[0].code, "D003");
    assert_eq!(d[0].line, 4);
}

#[test]
fn doc_comments_mentioning_annotations_do_not_register() {
    // A doc comment explaining the `// det-ok:` / `// par-ok:` convention
    // must neither suppress anything nor count as a stale annotation.
    assert_clean(
        "
        /// Annotate audited sites with `// det-ok: <reason>` or
        /// `// par-ok: <reason>`; reasonless annotations are findings.
        /** Block docs may mention // det-ok: too. */
        fn documented() {}
        ",
    );
}

#[test]
fn string_literals_with_comment_markers_do_not_open_comments() {
    let live = "fn f() { let s = \"not a comment: /* nor // here\"; let t = std::time::Instant::now(); }\n";
    let d = det_findings(live);
    assert_eq!(
        d.len(),
        1,
        "the code after the literal must still be scanned: {d:?}"
    );
    assert_eq!(d[0].code, "D003");
}
