//! Property tests for the graph doctor.
//!
//! The central claim of the shape pass is that re-deriving every op's
//! output shape from its operands reproduces what the kernels actually
//! computed. These tests generate random — but executable — op sequences,
//! record them on a real tape, and check that the static analysis agrees
//! with execution: zero shape diagnostics, zero flow diagnostics, and
//! (after a backward pass) a gradient for every parameter the flow pass
//! considers connected. A final property shows the converse: planting a
//! disconnected parameter always trips G001.

use analysis::{diagnose, shape, TapeMode};
use proptest::prelude::*;
use tensor::{Graph, Tensor, Var};

/// A deterministic filler in a small, NaN-free range.
fn fill(shape: Vec<usize>, salt: usize) -> Tensor {
    let n: usize = shape.iter().product();
    let data = (0..n)
        .map(|i| ((i * 7 + salt * 13) % 19) as f32 * 0.05 - 0.4)
        .collect();
    Tensor::from_vec(shape, data)
}

/// Builds a random but valid tape from op codes; returns the graph, the
/// scalar loss, and the number of parameters recorded.
fn build(ops: &[(u8, u8)], rows0: usize, cols0: usize) -> (Graph, Var, usize) {
    let mut g = Graph::with_seed(7);
    let (mut rows, mut cols) = (rows0, cols0);
    let mut cur = g.param(fill(vec![rows, cols], 0), 0);
    let mut hooks = 1usize;
    for (step, &(op, aux)) in ops.iter().enumerate() {
        match op % 10 {
            0 => cur = g.relu(cur),
            1 => cur = g.sigmoid(cur),
            2 => cur = g.tanh(cur),
            3 => cur = g.scale(cur, 0.5 + f32::from(aux) * 0.01),
            4 => {
                let other = g.param(fill(vec![rows, cols], step + 1), hooks);
                hooks += 1;
                cur = g.add(cur, other);
            }
            5 => {
                let other = g.param(fill(vec![rows, cols], step + 2), hooks);
                hooks += 1;
                cur = g.mul(cur, other);
            }
            6 => {
                let k = 1 + (aux % 4) as usize;
                let w = g.param(fill(vec![cols, k], step + 3), hooks);
                hooks += 1;
                cur = g.matmul(cur, w);
                cols = k;
            }
            7 => {
                let b = g.param(fill(vec![cols], step + 4), hooks);
                hooks += 1;
                cur = g.add_bias(cur, b);
            }
            8 => {
                cur = g.concat_rows(&[cur, cur]);
                rows *= 2;
            }
            _ => {
                let start = (aux as usize) % rows;
                let len = rows - start;
                cur = g.slice_rows(cur, start, len);
                rows = len;
            }
        }
    }
    let loss = g.sum(cur);
    (g, loss, hooks)
}

fn op_codes() -> impl Strategy<Value = Vec<(u8, u8)>> {
    prop::collection::vec((0u8..=255, 0u8..=255), 1..24)
}

proptest! {
    /// Statically inferred shapes agree with actual execution: the shape
    /// pass re-derives every op on a randomly composed tape without a
    /// single diagnostic.
    #[test]
    fn inferred_shapes_match_execution(ops in op_codes(),
                                       rows in 1usize..5,
                                       cols in 1usize..5) {
        let (g, _loss, _) = build(&ops, rows, cols);
        let diags = shape::check(&g);
        prop_assert!(diags.is_empty(), "unexpected diagnostics: {diags:?}");
    }

    /// A tape where everything feeds the loss is clean under the full
    /// static analysis (shape + flow).
    #[test]
    fn connected_tapes_are_clean(ops in op_codes(),
                                 rows in 1usize..5,
                                 cols in 1usize..5) {
        let (g, loss, _) = build(&ops, rows, cols);
        let report = diagnose(&g, loss, TapeMode::Train);
        prop_assert!(report.is_clean(), "{report}");
    }

    /// The flow pass's notion of connectivity matches backward: every
    /// parameter it calls connected actually receives a gradient.
    #[test]
    fn connected_params_receive_gradients(ops in op_codes(),
                                          rows in 1usize..5,
                                          cols in 1usize..5) {
        let (mut g, loss, hooks) = build(&ops, rows, cols);
        g.backward(loss);
        let got: usize = g.param_grads().count();
        prop_assert_eq!(got, hooks, "flow says all {} params train", hooks);
    }

    /// Planting a parameter that never feeds the loss always trips G001,
    /// no matter what the rest of the tape looks like.
    #[test]
    fn disconnected_param_is_always_flagged(ops in op_codes(),
                                            rows in 1usize..5,
                                            cols in 1usize..5) {
        let (mut g, loss, hooks) = build(&ops, rows, cols);
        let _orphan = g.param(fill(vec![2, 2], 99), hooks);
        let report = diagnose(&g, loss, TapeMode::Train);
        prop_assert!(report.has("G001"), "{report}");
        prop_assert_eq!(report.error_count(), 1);
    }
}
