//! Property tests for the hot-path auditor: seeded violations are
//! always caught, and reasoned `// hot-ok:` suppressions are always
//! honored.
//!
//! The generator assembles a synthetic source file from a random mix of
//! violation templates (one per lint code H001–H005), placing each
//! either inside a tick function (`fn tick`) or a helper (`fn helper`),
//! optionally annotated with a reasoned suppression. The properties:
//!
//! * every unsuppressed violation that is in scope for its code is
//!   reported with exactly that code;
//! * every reasoned suppression silences its line (no finding, no H000);
//! * a reason-less annotation surfaces as H000 and a dangling one as
//!   H009 — suppressions can never silently rot.

use analysis::hot::scan_hot_source;
use proptest::prelude::*;

/// One violation template: the line to plant, the code it must trip,
/// and whether it only fires inside a tick function.
#[derive(Debug, Clone, Copy)]
struct Template {
    line: &'static str,
    code: &'static str,
    tick_only: bool,
}

const TEMPLATES: &[Template] = &[
    Template {
        line: "let v = maybe.unwrap();",
        code: "H001",
        tick_only: false,
    },
    Template {
        line: "let v = maybe.expect(\"present\");",
        code: "H001",
        tick_only: false,
    },
    Template {
        line: "panic!(\"boom\");",
        code: "H002",
        tick_only: true,
    },
    Template {
        line: "assert_eq!(a, b);",
        code: "H002",
        tick_only: true,
    },
    Template {
        line: "let v = xs[i];",
        code: "H003",
        tick_only: true,
    },
    Template {
        line: "let v = vec![0u8; n];",
        code: "H004",
        tick_only: true,
    },
    Template {
        line: "let s = format!(\"{x}\");",
        code: "H004",
        tick_only: true,
    },
    Template {
        line: "let v = Vec::<u32>::with_capacity(n);",
        code: "H004",
        tick_only: true,
    },
    Template {
        line: "buf.reserve(len as u16 as usize);",
        code: "H005",
        tick_only: true,
    },
    Template {
        line: "buf.truncate(keep as u32 as usize);",
        code: "H005",
        tick_only: true,
    },
];

/// One planted site: which template, whether it goes in the tick fn,
/// and whether it carries a reasoned suppression.
#[derive(Debug, Clone, Copy)]
struct Site {
    template: usize,
    in_tick: bool,
    suppressed: bool,
}

fn sites() -> impl Strategy<Value = Vec<Site>> {
    prop::collection::vec(
        (0..TEMPLATES.len(), any::<bool>(), any::<bool>()).prop_map(
            |(template, in_tick, suppressed)| Site {
                template,
                in_tick,
                suppressed,
            },
        ),
        1..12,
    )
}

/// Renders the synthetic source: a tick fn and a helper fn, each
/// receiving its share of the planted sites.
fn render(sites: &[Site]) -> String {
    let mut tick_body = String::new();
    let mut helper_body = String::new();
    for site in sites {
        let t = TEMPLATES[site.template];
        let body = if site.in_tick {
            &mut tick_body
        } else {
            &mut helper_body
        };
        if site.suppressed {
            body.push_str("    // hot-ok: planted suppression with a reason\n");
        }
        body.push_str("    ");
        body.push_str(t.line);
        body.push('\n');
    }
    format!("fn tick() {{\n{tick_body}}}\n\nfn helper() {{\n{helper_body}}}\n")
}

/// Whether this planted site is in scope for its template's code.
fn in_scope(site: Site) -> bool {
    site.in_tick || !TEMPLATES[site.template].tick_only
}

proptest! {
    /// Every in-scope unsuppressed plant is found under its own code;
    /// every suppressed plant is silenced; nothing else fires.
    #[test]
    fn seeded_violations_are_caught_and_suppressions_honored(sites in sites()) {
        let src = render(&sites);
        let findings = scan_hot_source("synthetic.rs", &src, &["tick"]);

        let mut expected: Vec<&str> = sites
            .iter()
            .filter(|s| in_scope(**s) && !s.suppressed)
            .map(|s| TEMPLATES[s.template].code)
            .collect();
        expected.sort_unstable();

        // Hygiene codes are asserted separately below: H009 findings are
        // unsuppressed by construction but are not violation plants.
        let mut unsuppressed: Vec<&str> = findings
            .iter()
            .filter(|f| f.suppressed.is_none() && f.code != "H009")
            .map(|f| f.code)
            .collect();
        unsuppressed.sort_unstable();
        prop_assert_eq!(
            unsuppressed,
            expected,
            "unsuppressed findings must be exactly the in-scope plants\n{}",
            src
        );

        // Reasoned suppressions on in-scope plants surface as allowed
        // findings (suppressed = the reason), never as H000 or H009.
        prop_assert!(
            findings.iter().all(|f| f.code != "H000"),
            "every planted annotation carries a reason\n{}",
            src
        );
        let in_scope_suppressed = sites
            .iter()
            .filter(|s| in_scope(**s) && s.suppressed)
            .count();
        let allowed = findings.iter().filter(|f| f.suppressed.is_some()).count();
        prop_assert!(
            allowed >= in_scope_suppressed,
            "each in-scope suppressed plant is recorded as allowed\n{}",
            src
        );

        // Annotations on out-of-scope plants match no finding: H009.
        let dangling = sites
            .iter()
            .filter(|s| !in_scope(**s) && s.suppressed)
            .count();
        let stale = findings.iter().filter(|f| f.code == "H009").count();
        prop_assert_eq!(stale, dangling, "stale suppressions are H009\n{}", src);
    }

    /// A reason-less annotation is itself a finding (H000) regardless of
    /// what it sits on.
    #[test]
    fn reasonless_annotations_always_fire_h000(template in 0..TEMPLATES.len()) {
        let t = TEMPLATES[template];
        let src = format!("fn tick() {{\n    // hot-ok:\n    {}\n}}\n", t.line);
        let findings = scan_hot_source("synthetic.rs", &src, &["tick"]);
        prop_assert!(
            findings.iter().any(|f| f.code == "H000"),
            "missing-reason annotation must trip H000\n{}",
            src
        );
    }
}
