//! Property tests for the reduction-order analysis (`analysis::order`).
//!
//! The claim under test: for any executable tape, the canonical-order
//! verdict agrees with double execution. Concretely —
//!
//! * `check_forward` recomputes every reduction (matmul, softmax, sum)
//!   in the documented canonical order and bit-compares against what the
//!   kernels recorded; it must come back clean on every generated tape,
//!   and rebuilding the same tape in a second `Graph` must reproduce
//!   every node value bit-for-bit (the dynamic fact the static verdict
//!   summarizes).
//! * `check_backward` runs the backward pass twice and bit-compares all
//!   gradients; it must come back clean, and two *manual* backward
//!   passes must agree on every gradient bit — including scatter-add
//!   overlaps from embeddings with duplicate ids.

use analysis::order;
use proptest::prelude::*;
use tensor::{Graph, Tensor, Var};

/// A deterministic filler in a small, NaN-free range.
fn fill(shape: Vec<usize>, salt: usize) -> Tensor {
    let n: usize = shape.iter().product();
    let data = (0..n)
        .map(|i| ((i * 7 + salt * 13) % 19) as f32 * 0.05 - 0.4)
        .collect();
    Tensor::from_vec(shape, data)
}

/// Builds a random but valid reduction-heavy tape. Every op code lands
/// on something with a `Reduce` or `ScatterAdd` phase (or feeds one),
/// so the generated tapes exercise the analysis rather than skating
/// over `Accumulation::None` ops.
fn build(ops: &[(u8, u8)], rows0: usize, cols0: usize) -> (Graph, Var) {
    let mut g = Graph::with_seed(7);
    let (mut rows, mut cols) = (rows0, cols0);
    let mut cur = g.param(fill(vec![rows, cols], 0), 0);
    let mut hooks = 1usize;
    for (step, &(op, aux)) in ops.iter().enumerate() {
        match op % 6 {
            0 => {
                // Nn matmul: forward Reduce over k.
                let k = 1 + (aux % 4) as usize;
                let w = g.param(fill(vec![cols, k], step + 1), hooks);
                hooks += 1;
                cur = g.matmul(cur, w);
                cols = k;
            }
            1 => {
                // Nt matmul: square output, register-dot reduction.
                let w = g.param(fill(vec![rows, cols], step + 2), hooks);
                hooks += 1;
                cur = g.matmul_nt(cur, w);
                cols = rows;
            }
            2 => {
                // Softmax: max/sum folds per row.
                cur = g.softmax(cur);
            }
            3 => {
                // Embedding gather with deliberate duplicate ids: the
                // backward pass scatter-adds overlapping rows.
                let n = 2 + (aux % 3) as usize;
                let ids: Vec<usize> = (0..n).map(|i| (i * 2 + step) % rows).collect();
                cur = g.embedding(cur, &ids);
                rows = n;
            }
            4 => {
                // Gather duplicates rows; its backward also scatter-adds.
                let ids: Vec<usize> = (0..rows).map(|i| (i + 1) % rows).collect();
                cur = g.gather_rows(cur, &ids);
            }
            _ => {
                // Bias add: backward reduces over rows.
                let b = g.param(fill(vec![cols], step + 3), hooks);
                hooks += 1;
                cur = g.add_bias(cur, b);
            }
        }
    }
    let loss = g.sum(cur);
    (g, loss)
}

fn op_codes() -> impl Strategy<Value = Vec<(u8, u8)>> {
    prop::collection::vec((0u8..=255, 0u8..=255), 1..12)
}

fn dims() -> impl Strategy<Value = (usize, usize)> {
    (2usize..5, 1usize..5)
}

/// All node value bits, in tape order.
fn value_bits(g: &Graph) -> Vec<Vec<u32>> {
    (0..g.len())
        .map(|i| g.node_value(i).data().iter().map(|v| v.to_bits()).collect())
        .collect()
}

/// All node gradient bits (None where no grad), in tape order.
fn grad_bits(g: &Graph) -> Vec<Option<Vec<u32>>> {
    (0..g.len())
        .map(|i| {
            g.node_grad(i)
                .map(|t| t.data().iter().map(|v| v.to_bits()).collect())
        })
        .collect()
}

proptest! {
    /// Forward verdict ⇔ forward reproducibility: the canonical-order
    /// recomputation passes, and an independent rebuild of the same
    /// tape produces bit-identical values at every node.
    #[test]
    fn forward_verdict_matches_double_execution(
        ops in op_codes(),
        dims in dims(),
    ) {
        let (g1, _) = build(&ops, dims.0, dims.1);
        prop_assert!(
            order::check_forward(&g1).is_empty(),
            "canonical-order recomputation flagged a clean tape"
        );
        let (g2, _) = build(&ops, dims.0, dims.1);
        prop_assert_eq!(
            value_bits(&g1),
            value_bits(&g2),
            "two executions of the same tape disagree on value bits"
        );
    }

    /// Backward verdict ⇔ backward reproducibility: `check_backward`
    /// (which internally runs the pass twice) is clean, and two manual
    /// backward passes agree on every gradient bit.
    #[test]
    fn backward_verdict_matches_double_execution(
        ops in op_codes(),
        dims in dims(),
    ) {
        let (mut g, loss) = build(&ops, dims.0, dims.1);
        prop_assert!(
            order::check_backward(&mut g, loss).is_empty(),
            "double-run backward analysis flagged a clean tape"
        );
        g.backward(loss);
        let first = grad_bits(&g);
        g.backward(loss); // resets grads on entry, then re-accumulates
        prop_assert_eq!(
            first,
            grad_bits(&g),
            "two backward passes disagree on gradient bits"
        );
    }

    /// Teeth, property-style: any single-bit tamper of a reduction
    /// output is caught by the forward check — the verdict flips
    /// exactly when execution and canonical recomputation diverge.
    #[test]
    fn forward_tamper_is_always_caught(
        ops in op_codes(),
        dims in dims(),
        bit in 0u32..23,
    ) {
        let (mut g, loss) = build(&ops, dims.0, dims.1);
        // The final `sum` is always a recomputable reduction.
        g.tamper_value_for_test(loss.index(), |data| {
            data[0] = f32::from_bits(data[0].to_bits() ^ (1 << bit));
        });
        let findings = order::check_forward(&g);
        prop_assert!(
            findings.iter().any(|f| f.code == "D010"),
            "tampered reduction output escaped the forward check: {:?}",
            findings
        );
    }
}
