//! Multi-task fine-tuning with temperature up-sampling (§III-F).
//!
//! Training data of all four tasks is combined; each task's sampling
//! weight is proportional to `n^(1/T)` with `T = 2`, which boosts smaller
//! tasks relative to plain proportional mixing and prevents the largest
//! dataset (FeVisQA) from drowning the rest.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use corpus::Split;
use nn::param::ParamSet;
use nn::t5::T5Model;
use nn::train::{train_seq2seq, Example, TrainConfig, TrainReport};
use tokenizer::{special, WordTokenizer};

use crate::data::{Task, TaskDatasets};

/// Tokenizes an (input, output) pair with truncation and EOS.
pub fn tokenize_pair(tok: &WordTokenizer, input: &str, output: &str, max_len: usize) -> Example {
    (
        truncate(tok.encode_with_eos(input), max_len),
        truncate(tok.encode_with_eos(output), max_len),
    )
}

fn truncate(mut ids: Vec<u32>, max_len: usize) -> Vec<u32> {
    if ids.len() > max_len {
        ids.truncate(max_len - 1);
        ids.push(special::EOS);
    }
    ids
}

/// Builds the single-task training set for `task`.
pub fn single_task_examples(
    datasets: &TaskDatasets,
    task: Task,
    tok: &WordTokenizer,
    max_len: usize,
    split: Split,
) -> Vec<Example> {
    datasets
        .of(task, split)
        .into_iter()
        .map(|e| tokenize_pair(tok, &e.input, &e.output, max_len))
        .collect()
}

/// Builds a temperature-mixed multi-task training set.
///
/// With `temperature = 1` the mix is proportional (the "w/o up-sampling"
/// ablation); the paper's setting is `temperature = 2`. The returned set
/// has roughly the same total size as the union of the task datasets, with
/// per-task counts reweighted by `n^(1/T)`.
pub fn multi_task_examples(
    datasets: &TaskDatasets,
    tok: &WordTokenizer,
    max_len: usize,
    temperature: f64,
    seed: u64,
) -> Vec<Example> {
    assert!(temperature >= 1.0, "temperature must be >= 1");
    let mut per_task: Vec<(Task, Vec<Example>)> = Task::ALL
        .iter()
        .map(|&t| {
            (
                t,
                single_task_examples(datasets, t, tok, max_len, Split::Train),
            )
        })
        .filter(|(_, v)| !v.is_empty())
        .collect();
    let total: usize = per_task.iter().map(|(_, v)| v.len()).sum();
    if total == 0 {
        return Vec::new();
    }
    let weights: Vec<f64> = per_task
        .iter()
        .map(|(_, v)| (v.len() as f64).powf(1.0 / temperature))
        .collect();
    let weight_sum: f64 = weights.iter().sum();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut mixed = Vec::with_capacity(total);
    for ((_, examples), w) in per_task.iter_mut().zip(weights) {
        let quota = ((w / weight_sum) * total as f64).round().max(1.0) as usize;
        for i in 0..quota {
            // Cycle with a shuffled offset so upsampled tasks repeat
            // examples in varied order.
            let idx = if i < examples.len() {
                i
            } else {
                rng.gen_range(0..examples.len())
            };
            mixed.push(examples[idx].clone());
        }
    }
    mixed
}

/// Fine-tunes a model on prepared examples. Thin wrapper so the zoo gets a
/// consistent entry point.
pub fn finetune(
    model: &T5Model,
    ps: &mut ParamSet,
    examples: &[Example],
    cfg: &TrainConfig,
) -> TrainReport {
    let _span = obs::span!("finetune");
    train_seq2seq(model, ps, examples, &[], cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use corpus::{Corpus, CorpusConfig};

    fn setup() -> (TaskDatasets, WordTokenizer) {
        let corpus = Corpus::generate(&CorpusConfig {
            seed: 13,
            dbs_per_domain: 1,
            queries_per_db: 5,
            facts_per_db: 3,
        });
        let datasets = TaskDatasets::build(&corpus);
        let tok = WordTokenizer::fit(datasets.all_texts(), 1);
        (datasets, tok)
    }

    #[test]
    fn tokenize_pair_truncates_and_terminates() {
        let (_, tok) = setup();
        let long = "word ".repeat(500);
        let (src, tgt) = tokenize_pair(&tok, &long, "short output", 32);
        assert_eq!(src.len(), 32);
        assert_eq!(*src.last().unwrap(), special::EOS);
        assert_eq!(*tgt.last().unwrap(), special::EOS);
    }

    #[test]
    fn single_task_examples_nonempty() {
        let (datasets, tok) = setup();
        for task in Task::ALL {
            let ex = single_task_examples(&datasets, task, &tok, 96, Split::Train);
            assert!(!ex.is_empty(), "{}", task.label());
        }
    }

    #[test]
    fn temperature_two_boosts_small_tasks() {
        let (datasets, tok) = setup();
        let counts = |examples: &[Example], reference: &[(Task, usize)]| {
            let _ = examples;
            let _ = reference;
        };
        let _ = counts;
        let raw: Vec<(Task, usize)> = Task::ALL
            .iter()
            .map(|&t| (t, datasets.of(t, Split::Train).len()))
            .collect();
        let smallest = raw.iter().min_by_key(|(_, n)| *n).unwrap().0;
        let proportional = multi_task_examples(&datasets, &tok, 96, 1.0, 7);
        let tempered = multi_task_examples(&datasets, &tok, 96, 2.0, 7);
        // Compare the smallest task's share under both mixes by counting
        // exact example matches.
        let small_set = single_task_examples(&datasets, smallest, &tok, 96, Split::Train);
        let share = |mix: &[Example]| {
            mix.iter().filter(|e| small_set.contains(e)).count() as f64 / mix.len() as f64
        };
        assert!(
            share(&tempered) > share(&proportional),
            "temperature did not boost the smallest task"
        );
    }

    #[test]
    fn mix_size_is_close_to_union() {
        let (datasets, tok) = setup();
        let union: usize = Task::ALL
            .iter()
            .map(|&t| datasets.of(t, Split::Train).len())
            .sum();
        let mixed = multi_task_examples(&datasets, &tok, 96, 2.0, 3);
        let ratio = mixed.len() as f64 / union as f64;
        assert!((0.8..=1.2).contains(&ratio), "mix ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "temperature")]
    fn sub_unit_temperature_rejected() {
        let (datasets, tok) = setup();
        let _ = multi_task_examples(&datasets, &tok, 96, 0.5, 1);
    }
}
