//! Database schema filtration (§III-B).
//!
//! NL questions mention tables, columns, and values. N-gram matching
//! between the question and each table's identifiers selects the tables a
//! question actually references; the sub-schema keeps those tables with
//! all their columns (the paper filters at table level "to minimize
//! information loss"). When nothing matches, the full schema is kept —
//! dropping everything would starve the model of grounding.

use vql::schema::DbSchema;

/// Word n-grams (n = 1..=max_n) of a lowercased text.
fn ngrams(text: &str, max_n: usize) -> Vec<String> {
    let words: Vec<String> = text
        .to_lowercase()
        .split(|c: char| !c.is_alphanumeric() && c != '_')
        .filter(|w| !w.is_empty())
        .map(|w| w.to_string())
        .collect();
    let mut out = Vec::new();
    for n in 1..=max_n {
        for w in words.windows(n) {
            out.push(w.join(" "));
        }
        // Underscore variant: "year join" also matches "year_join".
        for w in words.windows(n) {
            if n > 1 {
                out.push(w.join("_"));
            }
        }
    }
    out
}

/// Whether a question references a table: its name, a column, or a
/// column-phrase (underscores read as spaces) appears among the question
/// n-grams.
fn table_referenced(grams: &[String], table: &vql::schema::TableSchema) -> bool {
    let tname = table.name.to_lowercase();
    if grams.contains(&tname) {
        return true;
    }
    for col in &table.columns {
        let c = col.to_lowercase();
        let spaced = c.replace('_', " ");
        if grams.iter().any(|g| *g == c || *g == spaced) {
            return true;
        }
    }
    false
}

/// Filters a schema to the tables the question references (§III-B).
///
/// Returns the full schema when no table matches, so downstream encoding
/// never sees an empty schema.
pub fn filter_schema(question: &str, schema: &DbSchema) -> DbSchema {
    obs::counter_add("filtration.calls", 1);
    let grams = ngrams(question, 3);
    let kept: Vec<&str> = schema
        .tables
        .iter()
        .filter(|t| table_referenced(&grams, t))
        .map(|t| t.name.as_str())
        .collect();
    if kept.is_empty() {
        obs::counter_add("filtration.fallback_full", 1);
        schema.clone()
    } else {
        obs::counter_add("filtration.tables_kept", kept.len() as u64);
        obs::counter_add(
            "filtration.tables_dropped",
            (schema.tables.len() - kept.len()) as u64,
        );
        schema.restricted_to(&kept)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vql::schema::TableSchema;

    fn schema() -> DbSchema {
        DbSchema::new(
            "theme_gallery",
            vec![
                TableSchema::new(
                    "artist",
                    vec!["artist_id".into(), "country".into(), "year_join".into()],
                ),
                TableSchema::new(
                    "exhibit",
                    vec!["exhibit_id".into(), "theme".into(), "ticket_price".into()],
                ),
            ],
        )
    }

    #[test]
    fn table_name_mention_selects_table() {
        let sub = filter_schema(
            "give me a pie chart about the number of countries in the artist table",
            &schema(),
        );
        assert_eq!(sub.tables.len(), 1);
        assert_eq!(sub.tables[0].name, "artist");
    }

    #[test]
    fn column_mention_selects_owner_table() {
        let sub = filter_schema("show the ticket price distribution", &schema());
        assert_eq!(sub.tables.len(), 1);
        assert_eq!(sub.tables[0].name, "exhibit");
    }

    #[test]
    fn underscored_column_matches_spaced_phrase() {
        let sub = filter_schema("average year join per country", &schema());
        assert_eq!(sub.tables[0].name, "artist");
    }

    #[test]
    fn multiple_mentions_keep_both_tables() {
        let sub = filter_schema("count exhibit themes for each artist country", &schema());
        assert_eq!(sub.tables.len(), 2);
    }

    #[test]
    fn no_match_keeps_full_schema() {
        let sub = filter_schema("draw something nice", &schema());
        assert_eq!(sub.tables.len(), 2);
    }

    #[test]
    fn filtration_preserves_database_name() {
        let sub = filter_schema("artist ages", &schema());
        assert_eq!(sub.name, "theme_gallery");
    }

    #[test]
    fn empty_schema_passes_through() {
        let empty = DbSchema::new("void", vec![]);
        let sub = filter_schema("show the artist countries", &empty);
        assert!(sub.tables.is_empty());
        assert_eq!(sub.name, "void");
    }

    #[test]
    fn empty_question_keeps_full_schema() {
        let sub = filter_schema("", &schema());
        assert_eq!(sub.tables.len(), 2);
    }

    #[test]
    fn no_overlap_question_keeps_full_schema() {
        let sub = filter_schema("42 bananas versus 7 spaceships", &schema());
        assert_eq!(sub.tables.len(), 2);
    }

    #[test]
    fn shared_column_name_keeps_every_owner() {
        // A column name owned by both tables is a tie: filtration keeps
        // both rather than picking an arbitrary winner.
        let s = DbSchema::new(
            "db",
            vec![
                TableSchema::new("artist", vec!["name".into(), "country".into()]),
                TableSchema::new("exhibit", vec!["name".into(), "theme".into()]),
            ],
        );
        let sub = filter_schema("sort everything by name", &s);
        assert_eq!(sub.tables.len(), 2);
    }

    #[test]
    fn kept_tables_preserve_schema_order() {
        // Mention order in the question ("exhibit" before "artist") must
        // not reorder the sub-schema.
        let sub = filter_schema("exhibit themes for each artist", &schema());
        assert_eq!(sub.tables.len(), 2);
        assert_eq!(sub.tables[0].name, "artist");
        assert_eq!(sub.tables[1].name, "exhibit");
    }

    #[test]
    fn unicode_identifiers_match_exactly() {
        let s = DbSchema::new(
            "db",
            vec![
                TableSchema::new("café", vec!["prix".into()]),
                TableSchema::new("musée", vec!["ville".into()]),
            ],
        );
        let sub = filter_schema("montre le prix moyen du café", &s);
        assert_eq!(sub.tables.len(), 1);
        assert_eq!(sub.tables[0].name, "café");
    }

    #[test]
    fn unicode_question_with_no_match_keeps_full_schema() {
        let sub = filter_schema("визуализируй что-нибудь 図表", &schema());
        assert_eq!(sub.tables.len(), 2);
    }

    #[test]
    fn partial_words_do_not_match() {
        // "art" is a prefix of "artist" but not an n-gram match.
        let sub = filter_schema("the art of themes", &schema());
        // "theme" singular is not "theme"? The column is "theme", which
        // matches exactly.
        assert!(sub.tables.iter().any(|t| t.name == "exhibit"));
        assert!(!sub.tables.iter().any(|t| t.name == "artist") || sub.tables.len() == 2);
    }
}
