//! DataVisT5: a pre-trained language model for jointly understanding text
//! and data visualization — the reproduction's core crate.
//!
//! The pipeline follows Figure 2 of the paper:
//!
//! 1. **Database schema filtration** ([`filtration`]) — n-gram matching
//!    between the NL question and table/column/value names selects a
//!    semantically aligned sub-schema.
//! 2. **DV knowledge encoding** ([`data`], building on `vql::encode`) —
//!    DV queries, schemas, and tables linearize into one text surface.
//! 3. **Standardized encoding** (`vql::standardize`) — stylistic
//!    normalization of DV queries and qualified columns everywhere.
//! 4. **Hybrid pre-training** ([`pretrain`]) — T5 span-corruption MLM plus
//!    Bidirectional Dual-Corpus translation objectives over the unified
//!    corpus.
//! 5. **Multi-task fine-tuning** ([`finetune`]) — temperature-up-sampled
//!    mixing (T = 2) of the four downstream tasks.
//!
//! [`zoo`] builds every model the paper compares (Seq2Vis, Transformer,
//! ncNet, RGVisNet, BART, CodeT5+ SFT, GPT-4 few-shot simulation,
//! LoRA-tuned large baselines, and DataVisT5 in two sizes), [`eval`] scores
//! them with the paper's metrics, and [`case_study`] regenerates the
//! qualitative tables.

pub mod case_study;
pub mod config;
pub mod data;
pub mod eval;
pub mod filtration;
pub mod finetune;
pub mod pretrain;
pub mod retrieval;
pub mod zoo;

pub use config::Scale;
pub use data::{Task, TaskDatasets, TaskExample};
pub use filtration::filter_schema;

/// Deterministic 64-bit seed derived from a string key (FNV-1a).
pub(crate) fn seed_of(key: &str) -> u64 {
    key.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
    })
}
