//! Evaluation harness for the four tasks (§V).
//!
//! * Text-to-vis: predictions are parsed, standardized against the
//!   example's database schema, and compared component-wise ([`vql::compare`]);
//!   unparseable predictions score zero on every component. Results are
//!   reported separately for non-join and join queries (Table IV's two
//!   blocks).
//! * Vis-to-text / FeVisQA / table-to-text: BLEU-1/2/4, ROUGE-1/2/L F1,
//!   and METEOR over `(prediction, reference)` pairs.

use corpus::Corpus;
use metrics::{bleu, meteor, rouge_l, rouge_n};
use vql::compare::{compare_queries, ComponentMatch, EmScores};
use vql::standardize::parse_standardized;

use crate::data::TaskExample;
use crate::zoo::Predictor;

/// Table IV row: EM family on the non-join and join subsets.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TextToVisScores {
    pub non_join: EmScores,
    pub join: EmScores,
}

impl TextToVisScores {
    /// Mean of the four EM metrics pooled over both subsets (the Table XII
    /// per-task summary, ×100 at the printer).
    pub fn mean_metric(&self) -> f64 {
        let total = self.non_join.n + self.join.n;
        if total == 0 {
            return 0.0;
        }
        let pool = |f: fn(&EmScores) -> f64| {
            (f(&self.non_join) * self.non_join.n as f64 + f(&self.join) * self.join.n as f64)
                / total as f64
        };
        (pool(|s| s.vis_em) + pool(|s| s.axis_em) + pool(|s| s.data_em) + pool(|s| s.em)) / 4.0
    }
}

/// Scores one text-to-vis prediction against its gold query.
pub fn score_text_to_vis(prediction: &str, gold: &str, corpus: &Corpus, db_name: &str) -> ComponentMatch {
    let Some(db) = corpus.database(db_name) else {
        return ComponentMatch::default();
    };
    let schema = db.schema();
    let Ok(gold_q) = parse_standardized(gold, &schema) else {
        return ComponentMatch::default();
    };
    match parse_standardized(prediction, &schema) {
        Ok(pred_q) => compare_queries(&pred_q, &gold_q),
        Err(_) => ComponentMatch::default(),
    }
}

/// Evaluates a predictor on text-to-vis examples, splitting join/non-join.
pub fn eval_text_to_vis(
    predictor: &dyn Predictor,
    examples: &[&TaskExample],
    corpus: &Corpus,
    cap: usize,
) -> TextToVisScores {
    let mut non_join = Vec::new();
    let mut join = Vec::new();
    let mut n_nj = 0usize;
    let mut n_j = 0usize;
    for e in examples {
        let bucket_full = if e.has_join { n_j >= cap } else { n_nj >= cap };
        if bucket_full {
            continue;
        }
        let gold = e.gold_query.as_deref().unwrap_or_default();
        let pred = predictor.predict(e);
        let m = score_text_to_vis(&pred, gold, corpus, &e.db_name);
        if e.has_join {
            join.push(m);
            n_j += 1;
        } else {
            non_join.push(m);
            n_nj += 1;
        }
    }
    TextToVisScores {
        non_join: EmScores::from_matches(&non_join),
        join: EmScores::from_matches(&join),
    }
}

/// Table VI / VIII row: the seven text-generation metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TextGenScores {
    pub bleu1: f64,
    pub bleu2: f64,
    pub bleu4: f64,
    pub rouge1: f64,
    pub rouge2: f64,
    pub rouge_l: f64,
    pub meteor: f64,
    pub n: usize,
}

impl TextGenScores {
    /// Computes all metrics over `(prediction, reference)` pairs.
    pub fn compute(pairs: &[(String, String)]) -> TextGenScores {
        TextGenScores {
            bleu1: bleu(pairs, 1),
            bleu2: bleu(pairs, 2),
            bleu4: bleu(pairs, 4),
            rouge1: rouge_n(pairs, 1),
            rouge2: rouge_n(pairs, 2),
            rouge_l: rouge_l(pairs),
            meteor: meteor(pairs),
            n: pairs.len(),
        }
    }

    /// Mean of the seven metrics (Table XII per-task summary).
    pub fn mean_metric(&self) -> f64 {
        (self.bleu1 + self.bleu2 + self.bleu4 + self.rouge1 + self.rouge2 + self.rouge_l
            + self.meteor)
            / 7.0
    }
}

/// Evaluates a predictor on a generative task.
pub fn eval_text_gen(
    predictor: &dyn Predictor,
    examples: &[&TaskExample],
    cap: usize,
) -> TextGenScores {
    let pairs: Vec<(String, String)> = examples
        .iter()
        .take(cap)
        .map(|e| {
            let pred = predictor.predict(e);
            let reference = crate::data::strip_prefix(e.task, &e.output);
            (pred, reference)
        })
        .collect();
    TextGenScores::compute(&pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{Task, TaskDatasets};
    use corpus::{CorpusConfig, Split};

    /// A predictor that always returns the gold output.
    struct Oracle;
    impl Predictor for Oracle {
        fn predict(&self, e: &TaskExample) -> String {
            crate::data::strip_prefix(e.task, &e.output)
        }
    }

    /// A predictor that returns nonsense.
    struct Noise;
    impl Predictor for Noise {
        fn predict(&self, _e: &TaskExample) -> String {
            "blorb".to_string()
        }
    }

    fn fixtures() -> (Corpus, TaskDatasets) {
        let corpus = Corpus::generate(&CorpusConfig {
            seed: 17,
            dbs_per_domain: 1,
            queries_per_db: 6,
            facts_per_db: 3,
        });
        let datasets = TaskDatasets::build(&corpus);
        (corpus, datasets)
    }

    #[test]
    fn oracle_scores_perfect_em() {
        let (corpus, datasets) = fixtures();
        let examples = datasets.of(Task::TextToVis, Split::Test);
        let scores = eval_text_to_vis(&Oracle, &examples, &corpus, 50);
        if scores.non_join.n > 0 {
            assert_eq!(scores.non_join.em, 1.0);
        }
        if scores.join.n > 0 {
            assert_eq!(scores.join.em, 1.0);
        }
        assert!(scores.mean_metric() > 0.99);
    }

    #[test]
    fn noise_scores_zero_em() {
        let (corpus, datasets) = fixtures();
        let examples = datasets.of(Task::TextToVis, Split::Test);
        let scores = eval_text_to_vis(&Noise, &examples, &corpus, 50);
        assert_eq!(scores.non_join.em, 0.0);
        assert_eq!(scores.mean_metric(), 0.0);
    }

    #[test]
    fn oracle_text_gen_is_perfect() {
        let (_, datasets) = fixtures();
        let examples = datasets.of(Task::VisToText, Split::Test);
        let scores = eval_text_gen(&Oracle, &examples, 20);
        assert!(scores.bleu1 > 0.999);
        assert!(scores.rouge_l > 0.999);
        assert!(scores.meteor > 0.95);
    }

    #[test]
    fn cap_limits_scored_examples() {
        let (corpus, datasets) = fixtures();
        let examples = datasets.of(Task::TextToVis, Split::Test);
        let scores = eval_text_to_vis(&Oracle, &examples, &corpus, 2);
        assert!(scores.non_join.n <= 2 && scores.join.n <= 2);
    }

    #[test]
    fn partial_match_scores_components_independently() {
        let (corpus, datasets) = fixtures();
        let e = datasets
            .of(Task::TextToVis, Split::Test)
            .into_iter()
            .find(|e| e.gold_query.as_deref().unwrap_or("").starts_with("visualize bar"))
            .expect("a bar-chart example exists");
        let gold = e.gold_query.clone().unwrap();
        // Flip the chart type only.
        let pred = gold.replacen("visualize bar", "visualize pie", 1);
        let m = score_text_to_vis(&pred, &gold, &corpus, &e.db_name);
        assert!(!m.vis);
        assert!(m.axis && m.data);
    }

    #[test]
    fn unparseable_prediction_scores_zero() {
        let (corpus, datasets) = fixtures();
        let e = &datasets.of(Task::TextToVis, Split::Test)[0];
        let m = score_text_to_vis("not a query", e.gold_query.as_deref().unwrap(), &corpus, &e.db_name);
        assert!(!m.vis && !m.axis && !m.data);
    }
}
