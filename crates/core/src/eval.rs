//! Evaluation harness for the four tasks (§V).
//!
//! * Text-to-vis: predictions are parsed, standardized against the
//!   example's database schema, and compared component-wise ([`vql::compare`]);
//!   unparseable predictions score zero on every component. Results are
//!   reported separately for non-join and join queries (Table IV's two
//!   blocks).
//! * Vis-to-text / FeVisQA / table-to-text: BLEU-1/2/4, ROUGE-1/2/L F1,
//!   and METEOR over `(prediction, reference)` pairs.
//!
//! Text-to-vis additionally runs every model-generated query through the
//! VQL lint pass ([`vql::lint`], codes V001–V006) against the example's
//! database — including the type-aware V002 check, whose column-type
//! oracle is projected from the storage engine's typed catalog — and
//! reports the per-code tallies alongside the EM scores.

use corpus::Corpus;
use metrics::{bleu, meteor, rouge_l, rouge_n};
use storage::Database;
use vql::compare::{compare_queries, ComponentMatch, EmScores};
use vql::standardize::parse_standardized;
use vql::{ColumnTypes, LintCounts};

use crate::data::TaskExample;
use crate::zoo::Predictor;

/// Table IV row: EM family on the non-join and join subsets, plus the lint
/// tally over every generated query.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TextToVisScores {
    pub non_join: EmScores,
    pub join: EmScores,
    pub lints: LintCounts,
}

impl TextToVisScores {
    /// Mean of the four EM metrics pooled over both subsets (the Table XII
    /// per-task summary, ×100 at the printer).
    pub fn mean_metric(&self) -> f64 {
        let total = self.non_join.n + self.join.n;
        if total == 0 {
            return 0.0;
        }
        let pool = |f: fn(&EmScores) -> f64| {
            (f(&self.non_join) * self.non_join.n as f64 + f(&self.join) * self.join.n as f64)
                / total as f64
        };
        (pool(|s| s.vis_em) + pool(|s| s.axis_em) + pool(|s| s.data_em) + pool(|s| s.em)) / 4.0
    }
}

/// Scores one text-to-vis prediction against its gold query.
pub fn score_text_to_vis(
    prediction: &str,
    gold: &str,
    corpus: &Corpus,
    db_name: &str,
) -> ComponentMatch {
    let Some(db) = corpus.database(db_name) else {
        return ComponentMatch::default();
    };
    let schema = db.schema();
    let Ok(gold_q) = parse_standardized(gold, &schema) else {
        return ComponentMatch::default();
    };
    match parse_standardized(prediction, &schema) {
        Ok(pred_q) => compare_queries(&pred_q, &gold_q),
        Err(_) => ComponentMatch::default(),
    }
}

/// Projects a storage database's typed catalog into the string-keyed
/// column-type oracle the VQL linter consumes (V002: aggregate on a
/// non-numeric column).
pub fn column_types(db: &Database) -> ColumnTypes {
    let mut types = ColumnTypes::new();
    for table in &db.tables {
        for col in &table.columns {
            types.insert(&table.name, &col.name, col.ty.is_numeric());
        }
    }
    types
}

/// Lints one prediction string against its database, folding the result
/// into `counts`.
fn lint_prediction(prediction: &str, corpus: &Corpus, db_name: &str, counts: &mut LintCounts) {
    let Some(db) = corpus.database(db_name) else {
        return;
    };
    match vql::parse_query(prediction) {
        Ok(q) => counts.record(&vql::lint(&q, &db.schema(), Some(&column_types(db)))),
        Err(_) => counts.record_unparsed(),
    }
}

/// Evaluates a predictor on text-to-vis examples, splitting join/non-join
/// and linting every generated query.
pub fn eval_text_to_vis(
    predictor: &dyn Predictor,
    examples: &[&TaskExample],
    corpus: &Corpus,
    cap: usize,
) -> TextToVisScores {
    let _span = obs::span!("eval/text_to_vis");
    // Which examples get scored depends only on the join flag and the
    // per-bucket caps — never on a prediction — so the scored set is fixed
    // up front and predicted in one batch (the neural predictors pack it
    // through the batched inference engine).
    let mut selected: Vec<&TaskExample> = Vec::new();
    let mut n_nj = 0usize;
    let mut n_j = 0usize;
    for e in examples {
        let bucket_full = if e.has_join { n_j >= cap } else { n_nj >= cap };
        if bucket_full {
            continue;
        }
        if e.has_join {
            n_j += 1;
        } else {
            n_nj += 1;
        }
        selected.push(e);
    }
    obs::counter_add("eval.examples", selected.len() as u64);
    let preds = predictor.predict_batch(&selected);
    let mut non_join = Vec::new();
    let mut join = Vec::new();
    let mut lints = LintCounts::default();
    for (e, pred) in selected.iter().zip(&preds) {
        let gold = e.gold_query.as_deref().unwrap_or_default();
        let m = score_text_to_vis(pred, gold, corpus, &e.db_name);
        lint_prediction(pred, corpus, &e.db_name, &mut lints);
        if e.has_join {
            join.push(m);
        } else {
            non_join.push(m);
        }
    }
    TextToVisScores {
        non_join: EmScores::from_matches(&non_join),
        join: EmScores::from_matches(&join),
        lints,
    }
}

/// Table VI / VIII row: the seven text-generation metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TextGenScores {
    pub bleu1: f64,
    pub bleu2: f64,
    pub bleu4: f64,
    pub rouge1: f64,
    pub rouge2: f64,
    pub rouge_l: f64,
    pub meteor: f64,
    pub n: usize,
}

impl TextGenScores {
    /// Computes all metrics over `(prediction, reference)` pairs.
    pub fn compute(pairs: &[(String, String)]) -> TextGenScores {
        TextGenScores {
            bleu1: bleu(pairs, 1),
            bleu2: bleu(pairs, 2),
            bleu4: bleu(pairs, 4),
            rouge1: rouge_n(pairs, 1),
            rouge2: rouge_n(pairs, 2),
            rouge_l: rouge_l(pairs),
            meteor: meteor(pairs),
            n: pairs.len(),
        }
    }

    /// Mean of the seven metrics (Table XII per-task summary).
    pub fn mean_metric(&self) -> f64 {
        (self.bleu1
            + self.bleu2
            + self.bleu4
            + self.rouge1
            + self.rouge2
            + self.rouge_l
            + self.meteor)
            / 7.0
    }
}

/// Evaluates a predictor on a generative task.
pub fn eval_text_gen(
    predictor: &dyn Predictor,
    examples: &[&TaskExample],
    cap: usize,
) -> TextGenScores {
    let _span = obs::span!("eval/text_gen");
    let selected: Vec<&TaskExample> = examples.iter().take(cap).copied().collect();
    obs::counter_add("eval.examples", selected.len() as u64);
    let preds = predictor.predict_batch(&selected);
    let pairs: Vec<(String, String)> = selected
        .iter()
        .zip(preds)
        .map(|(e, pred)| (pred, crate::data::strip_prefix(e.task, &e.output)))
        .collect();
    TextGenScores::compute(&pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{Task, TaskDatasets};
    use corpus::{CorpusConfig, Split};

    /// A predictor that always returns the gold output.
    struct Oracle;
    impl Predictor for Oracle {
        fn predict(&self, e: &TaskExample) -> String {
            crate::data::strip_prefix(e.task, &e.output)
        }
    }

    /// A predictor that returns nonsense.
    struct Noise;
    impl Predictor for Noise {
        fn predict(&self, _e: &TaskExample) -> String {
            "blorb".to_string()
        }
    }

    fn fixtures() -> (Corpus, TaskDatasets) {
        let corpus = Corpus::generate(&CorpusConfig {
            seed: 17,
            dbs_per_domain: 1,
            queries_per_db: 6,
            facts_per_db: 3,
        });
        let datasets = TaskDatasets::build(&corpus);
        (corpus, datasets)
    }

    #[test]
    fn oracle_scores_perfect_em() {
        let (corpus, datasets) = fixtures();
        let examples = datasets.of(Task::TextToVis, Split::Test);
        let scores = eval_text_to_vis(&Oracle, &examples, &corpus, 50);
        if scores.non_join.n > 0 {
            assert_eq!(scores.non_join.em, 1.0);
        }
        if scores.join.n > 0 {
            assert_eq!(scores.join.em, 1.0);
        }
        assert!(scores.mean_metric() > 0.99);
    }

    #[test]
    fn noise_scores_zero_em() {
        let (corpus, datasets) = fixtures();
        let examples = datasets.of(Task::TextToVis, Split::Test);
        let scores = eval_text_to_vis(&Noise, &examples, &corpus, 50);
        assert_eq!(scores.non_join.em, 0.0);
        assert_eq!(scores.mean_metric(), 0.0);
    }

    #[test]
    fn oracle_text_gen_is_perfect() {
        let (_, datasets) = fixtures();
        let examples = datasets.of(Task::VisToText, Split::Test);
        let scores = eval_text_gen(&Oracle, &examples, 20);
        assert!(scores.bleu1 > 0.999);
        assert!(scores.rouge_l > 0.999);
        assert!(scores.meteor > 0.95);
    }

    #[test]
    fn cap_limits_scored_examples() {
        let (corpus, datasets) = fixtures();
        let examples = datasets.of(Task::TextToVis, Split::Test);
        let scores = eval_text_to_vis(&Oracle, &examples, &corpus, 2);
        assert!(scores.non_join.n <= 2 && scores.join.n <= 2);
    }

    #[test]
    fn partial_match_scores_components_independently() {
        let (corpus, datasets) = fixtures();
        let e = datasets
            .of(Task::TextToVis, Split::Test)
            .into_iter()
            .find(|e| {
                e.gold_query
                    .as_deref()
                    .unwrap_or("")
                    .starts_with("visualize bar")
            })
            .expect("a bar-chart example exists");
        let gold = e.gold_query.clone().unwrap();
        // Flip the chart type only.
        let pred = gold.replacen("visualize bar", "visualize pie", 1);
        let m = score_text_to_vis(&pred, &gold, &corpus, &e.db_name);
        assert!(!m.vis);
        assert!(m.axis && m.data);
    }

    #[test]
    fn oracle_predictions_lint_clean() {
        let (corpus, datasets) = fixtures();
        let examples = datasets.of(Task::TextToVis, Split::Test);
        let scores = eval_text_to_vis(&Oracle, &examples, &corpus, 50);
        let lints = scores.lints;
        assert!(lints.checked > 0);
        assert_eq!(lints.unparsed, 0);
        // Gold queries are generated against the schema, so the linter must
        // accept every one of them (including the V002 type check).
        assert_eq!(lints.clean, lints.checked, "{lints}");
        assert_eq!(lints.clean_rate(), 1.0);
    }

    #[test]
    fn noise_predictions_count_as_unparsed() {
        let (corpus, datasets) = fixtures();
        let examples = datasets.of(Task::TextToVis, Split::Test);
        let scores = eval_text_to_vis(&Noise, &examples, &corpus, 50);
        assert_eq!(scores.lints.unparsed, scores.lints.checked);
        assert_eq!(scores.lints.clean_rate(), 0.0);
    }

    #[test]
    fn column_types_reflect_storage_catalog() {
        let (corpus, datasets) = fixtures();
        let e = &datasets.of(Task::TextToVis, Split::Test)[0];
        let db = corpus.database(&e.db_name).unwrap();
        let types = column_types(db);
        let total: usize = db.tables.iter().map(|t| t.columns.len()).sum();
        assert_eq!(types.len(), total);
        for table in &db.tables {
            for col in &table.columns {
                assert_eq!(
                    types.is_numeric(&table.name, &col.name),
                    Some(col.ty.is_numeric())
                );
            }
        }
    }

    #[test]
    fn type_violations_surface_in_lint_tally() {
        // Rewrite each gold query's aggregate into `sum(<text column>)` so
        // the V002 lint must fire.
        struct SumText<'a>(&'a Corpus);
        impl Predictor for SumText<'_> {
            fn predict(&self, e: &TaskExample) -> String {
                let gold = e.gold_query.as_deref().unwrap_or_default();
                let Some(db) = self.0.database(&e.db_name) else {
                    return gold.to_string();
                };
                let types = column_types(db);
                // Find a non-numeric column to abuse.
                for table in &db.tables {
                    for col in &table.columns {
                        if types.is_numeric(&table.name, &col.name) == Some(false) {
                            if let Ok(mut q) = vql::parse_query(gold) {
                                for s in &mut q.select {
                                    if let vql::ColExpr::Agg(agg, c) = s {
                                        *agg = vql::AggFunc::Sum;
                                        c.table = Some(table.name.clone());
                                        c.column = col.name.clone();
                                    }
                                }
                                return q.to_string();
                            }
                        }
                    }
                }
                gold.to_string()
            }
        }
        let (corpus, datasets) = fixtures();
        let examples = datasets.of(Task::TextToVis, Split::Test);
        let scores = eval_text_to_vis(&SumText(&corpus), &examples, &corpus, 50);
        assert!(scores.lints.v002 > 0, "{}", scores.lints);
    }

    #[test]
    fn unparseable_prediction_scores_zero() {
        let (corpus, datasets) = fixtures();
        let e = &datasets.of(Task::TextToVis, Split::Test)[0];
        let m = score_text_to_vis(
            "not a query",
            e.gold_query.as_deref().unwrap(),
            &corpus,
            &e.db_name,
        );
        assert!(!m.vis && !m.axis && !m.data);
    }
}
