//! TF-IDF retrieval over training examples.
//!
//! Two baselines need nearest-neighbour retrieval: RGVisNet retrieves a DV
//! query prototype before revising it, and the GPT-4 few-shot simulator
//! retrieves similar training examples as in-context demonstrations.

use std::collections::HashMap;

/// A TF-IDF index over a fixed document set.
#[derive(Debug, Clone)]
pub struct TfIdfIndex {
    /// Per-document term frequency vectors (term id -> weight), L2
    /// normalized.
    doc_vectors: Vec<HashMap<usize, f64>>,
    /// Vocabulary with document frequencies.
    terms: HashMap<String, usize>,
    idf: Vec<f64>,
}

impl TfIdfIndex {
    /// Builds the index over tokenized documents.
    pub fn build(docs: &[String]) -> TfIdfIndex {
        let tokenized: Vec<Vec<String>> = docs.iter().map(|d| tokenize(d)).collect();
        let mut terms: HashMap<String, usize> = HashMap::new();
        let mut doc_freq: Vec<usize> = Vec::new();
        for toks in &tokenized {
            let mut seen = std::collections::HashSet::new();
            for t in toks {
                if seen.insert(t.clone()) {
                    let id = *terms.entry(t.clone()).or_insert_with(|| {
                        doc_freq.push(0);
                        doc_freq.len() - 1
                    });
                    doc_freq[id] += 1;
                }
            }
        }
        let n = docs.len().max(1) as f64;
        let idf: Vec<f64> = doc_freq
            .iter()
            .map(|&df| (n / (1.0 + df as f64)).ln() + 1.0)
            .collect();
        let doc_vectors = tokenized
            .iter()
            .map(|toks| vectorize(toks, &terms, &idf))
            .collect();
        TfIdfIndex {
            doc_vectors,
            terms,
            idf,
        }
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.doc_vectors.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.doc_vectors.is_empty()
    }

    /// Indices of the `k` most similar documents (best first).
    pub fn top_k(&self, query: &str, k: usize) -> Vec<usize> {
        let q = vectorize(&tokenize(query), &self.terms, &self.idf);
        let mut scored: Vec<(usize, f64)> = self
            .doc_vectors
            .iter()
            .enumerate()
            .map(|(i, d)| (i, cosine(&q, d)))
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        scored.into_iter().take(k).map(|(i, _)| i).collect()
    }

    /// The single most similar document.
    pub fn nearest(&self, query: &str) -> Option<usize> {
        self.top_k(query, 1).first().copied()
    }
}

fn tokenize(text: &str) -> Vec<String> {
    text.to_lowercase()
        .split(|c: char| !c.is_alphanumeric() && c != '_' && c != '.')
        .filter(|w| !w.is_empty())
        .map(|w| w.to_string())
        .collect()
}

fn vectorize(
    tokens: &[String],
    terms: &HashMap<String, usize>,
    idf: &[f64],
) -> HashMap<usize, f64> {
    let mut tf: HashMap<usize, f64> = HashMap::new();
    for t in tokens {
        if let Some(&id) = terms.get(t) {
            *tf.entry(id).or_insert(0.0) += 1.0;
        }
    }
    for (id, w) in tf.iter_mut() {
        *w *= idf[*id];
    }
    let norm: f64 = tf.values().map(|w| w * w).sum::<f64>().sqrt();
    if norm > 0.0 {
        for w in tf.values_mut() {
            *w /= norm;
        }
    }
    tf
}

fn cosine(a: &HashMap<usize, f64>, b: &HashMap<usize, f64>) -> f64 {
    let (small, big) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    small
        .iter()
        .filter_map(|(id, w)| big.get(id).map(|v| w * v))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs() -> Vec<String> {
        vec![
            "show the number of artists per country in a pie chart".into(),
            "average base price of rooms by decor scatter".into(),
            "count players for each team in a bar chart".into(),
        ]
    }

    #[test]
    fn nearest_finds_lexical_match() {
        let idx = TfIdfIndex::build(&docs());
        assert_eq!(idx.nearest("price of rooms by decor"), Some(1));
        assert_eq!(idx.nearest("how many artists in each country"), Some(0));
    }

    #[test]
    fn top_k_orders_by_similarity() {
        let idx = TfIdfIndex::build(&docs());
        let top = idx.top_k("chart of players per team", 3);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0], 2);
    }

    #[test]
    fn idf_downweights_common_words() {
        // "chart" appears in two docs; "decor" only in one. A query with
        // both should prefer the decor doc.
        let idx = TfIdfIndex::build(&docs());
        assert_eq!(idx.nearest("decor chart"), Some(1));
    }

    #[test]
    fn empty_query_is_safe() {
        let idx = TfIdfIndex::build(&docs());
        let top = idx.top_k("", 2);
        assert_eq!(top.len(), 2);
    }

    #[test]
    fn empty_index_is_safe() {
        let idx = TfIdfIndex::build(&[]);
        assert!(idx.is_empty());
        assert_eq!(idx.nearest("anything"), None);
    }

    #[test]
    fn qualified_columns_are_single_terms() {
        let idx = TfIdfIndex::build(&["select artist.country from artist".to_string()]);
        assert!(idx.terms.contains_key("artist.country"));
    }
}
