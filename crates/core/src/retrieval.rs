//! TF-IDF retrieval over training examples.
//!
//! Two baselines need nearest-neighbour retrieval: RGVisNet retrieves a DV
//! query prototype before revising it, and the GPT-4 few-shot simulator
//! retrieves similar training examples as in-context demonstrations.

use std::collections::{BTreeMap, HashMap};

/// A TF-IDF index over a fixed document set.
///
/// Weight vectors are `BTreeMap`s, not `HashMap`s: their values feed
/// float accumulations (norms, dot products) whose result bits depend on
/// summation order, and retrieval picks prototypes/demonstrations from
/// the resulting scores — a hash-ordered sum would make predictions
/// differ between runs (D001/D005). Ascending-term-id iteration pins one
/// canonical order.
#[derive(Debug, Clone)]
pub struct TfIdfIndex {
    /// Per-document term frequency vectors (term id -> weight), L2
    /// normalized, iterated in ascending term id.
    doc_vectors: Vec<BTreeMap<usize, f64>>,
    /// Vocabulary with document frequencies (lookup-only: never iterated).
    terms: HashMap<String, usize>,
    idf: Vec<f64>,
}

impl TfIdfIndex {
    /// Builds the index over tokenized documents.
    pub fn build(docs: &[String]) -> TfIdfIndex {
        let tokenized: Vec<Vec<String>> = docs.iter().map(|d| tokenize(d)).collect();
        let mut terms: HashMap<String, usize> = HashMap::new();
        let mut doc_freq: Vec<usize> = Vec::new();
        for toks in &tokenized {
            let mut seen = std::collections::HashSet::new();
            for t in toks {
                if seen.insert(t.clone()) {
                    let id = *terms.entry(t.clone()).or_insert_with(|| {
                        doc_freq.push(0);
                        doc_freq.len() - 1
                    });
                    doc_freq[id] += 1;
                }
            }
        }
        let n = docs.len().max(1) as f64;
        let idf: Vec<f64> = doc_freq
            .iter()
            .map(|&df| (n / (1.0 + df as f64)).ln() + 1.0)
            .collect();
        let doc_vectors = tokenized
            .iter()
            .map(|toks| vectorize(toks, &terms, &idf))
            .collect();
        TfIdfIndex {
            doc_vectors,
            terms,
            idf,
        }
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.doc_vectors.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.doc_vectors.is_empty()
    }

    /// Indices of the `k` most similar documents (best first). Tie-break
    /// is total and documented: score descending, then document index
    /// ascending — equal-scoring documents always come back in corpus
    /// order, never in sort-internals order.
    pub fn top_k(&self, query: &str, k: usize) -> Vec<usize> {
        let q = vectorize(&tokenize(query), &self.terms, &self.idf);
        let mut scored: Vec<(usize, f64)> = self
            .doc_vectors
            .iter()
            .enumerate()
            .map(|(i, d)| (i, cosine(&q, d)))
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        scored.into_iter().take(k).map(|(i, _)| i).collect()
    }

    /// The single most similar document.
    pub fn nearest(&self, query: &str) -> Option<usize> {
        self.top_k(query, 1).first().copied()
    }
}

fn tokenize(text: &str) -> Vec<String> {
    text.to_lowercase()
        .split(|c: char| !c.is_alphanumeric() && c != '_' && c != '.')
        .filter(|w| !w.is_empty())
        .map(|w| w.to_string())
        .collect()
}

fn vectorize(
    tokens: &[String],
    terms: &HashMap<String, usize>,
    idf: &[f64],
) -> BTreeMap<usize, f64> {
    let mut tf: BTreeMap<usize, f64> = BTreeMap::new();
    for t in tokens {
        if let Some(&id) = terms.get(t) {
            *tf.entry(id).or_insert(0.0) += 1.0;
        }
    }
    for (id, w) in tf.iter_mut() {
        *w *= idf[*id];
    }
    let norm: f64 = tf.values().map(|w| w * w).sum::<f64>().sqrt();
    if norm > 0.0 {
        for w in tf.values_mut() {
            *w /= norm;
        }
    }
    tf
}

/// Sparse dot product, accumulated in ascending term id of the smaller
/// vector (ties on length pick `a`) — one canonical order per input pair.
fn cosine(a: &BTreeMap<usize, f64>, b: &BTreeMap<usize, f64>) -> f64 {
    let (small, big) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    small
        .iter()
        .filter_map(|(id, w)| big.get(id).map(|v| w * v))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs() -> Vec<String> {
        vec![
            "show the number of artists per country in a pie chart".into(),
            "average base price of rooms by decor scatter".into(),
            "count players for each team in a bar chart".into(),
        ]
    }

    #[test]
    fn nearest_finds_lexical_match() {
        let idx = TfIdfIndex::build(&docs());
        assert_eq!(idx.nearest("price of rooms by decor"), Some(1));
        assert_eq!(idx.nearest("how many artists in each country"), Some(0));
    }

    #[test]
    fn top_k_orders_by_similarity() {
        let idx = TfIdfIndex::build(&docs());
        let top = idx.top_k("chart of players per team", 3);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0], 2);
    }

    #[test]
    fn idf_downweights_common_words() {
        // "chart" appears in two docs; "decor" only in one. A query with
        // both should prefer the decor doc.
        let idx = TfIdfIndex::build(&docs());
        assert_eq!(idx.nearest("decor chart"), Some(1));
    }

    #[test]
    fn empty_query_is_safe() {
        let idx = TfIdfIndex::build(&docs());
        let top = idx.top_k("", 2);
        assert_eq!(top.len(), 2);
    }

    #[test]
    fn empty_index_is_safe() {
        let idx = TfIdfIndex::build(&[]);
        assert!(idx.is_empty());
        assert_eq!(idx.nearest("anything"), None);
    }

    #[test]
    fn qualified_columns_are_single_terms() {
        let idx = TfIdfIndex::build(&["select artist.country from artist".to_string()]);
        assert!(idx.terms.contains_key("artist.country"));
    }

    /// Regression (determinism audit): scores must be bit-identical across
    /// independently built indexes. Every `HashMap` instance seeds SipHash
    /// differently, so before the `BTreeMap` conversion two builds of the
    /// same corpus could sum cosine terms in different orders and disagree
    /// in the last bits — enough to flip a tie.
    #[test]
    fn scores_are_bit_identical_across_index_instances() {
        // Enough terms per document that float-sum order has room to vary.
        let corpus: Vec<String> = (0..8)
            .map(|i| {
                (0..40)
                    .map(|j| format!("w{}", (i * 7 + j * 3) % 23))
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect();
        let query = "w1 w2 w3 w5 w8 w13 w21";
        let a = TfIdfIndex::build(&corpus);
        let b = TfIdfIndex::build(&corpus);
        for (va, vb) in a.doc_vectors.iter().zip(&b.doc_vectors) {
            for ((ka, wa), (kb, wb)) in va.iter().zip(vb) {
                assert_eq!(ka, kb);
                assert_eq!(wa.to_bits(), wb.to_bits());
            }
        }
        let qa = vectorize(&tokenize(query), &a.terms, &a.idf);
        let qb = vectorize(&tokenize(query), &b.terms, &b.idf);
        for (da, db) in a.doc_vectors.iter().zip(&b.doc_vectors) {
            assert_eq!(cosine(&qa, da).to_bits(), cosine(&qb, db).to_bits());
        }
        assert_eq!(a.top_k(query, 8), b.top_k(query, 8));
    }

    /// Regression (determinism audit): equal-scoring documents come back
    /// in corpus order — the documented score-desc-then-index-asc
    /// tie-break, not sort-internals order.
    #[test]
    fn top_k_ties_break_by_corpus_index() {
        let corpus: Vec<String> = vec![
            "alpha beta".into(),
            "gamma delta".into(), // no overlap: score 0, tied with doc 3
            "alpha beta".into(),  // identical to doc 0: exact score tie
            "epsilon zeta".into(),
        ];
        let idx = TfIdfIndex::build(&corpus);
        // Docs 0 and 2 tie at the top; docs 1 and 3 tie at zero.
        assert_eq!(idx.top_k("alpha beta", 4), vec![0, 2, 1, 3]);
        // An all-zero query ties every document: pure corpus order.
        assert_eq!(idx.top_k("unseen words only", 4), vec![0, 1, 2, 3]);
    }
}
