//! Reproduction scale presets.
//!
//! The original system trains 220M/770M-parameter models on four A40 GPUs;
//! this reproduction runs on one CPU core. `Scale` centralizes every knob
//! that trades fidelity for wall-clock so the experiment binaries can run
//! at `Full` scale while tests and Criterion benches use `Smoke`.

use analysis::SanitizerMode;
use corpus::CorpusConfig;
use nn::t5::{Positional, T5Config};

/// Model size tier (the paper's 220M vs 770M).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Size {
    Base,
    Large,
}

impl Size {
    pub fn label(&self) -> &'static str {
        match self {
            Size::Base => "220M",
            Size::Large => "770M",
        }
    }
}

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minutes-scale: tiny models, small corpus — tests and smoke benches.
    Smoke,
    /// The EXPERIMENTS.md configuration.
    Full,
}

impl Scale {
    /// Reads `DATAVIST5_SCALE` (`full` / `smoke`), defaulting to `Smoke`.
    pub fn from_env() -> Scale {
        match std::env::var("DATAVIST5_SCALE").as_deref() {
            Ok("full") | Ok("FULL") => Scale::Full,
            _ => Scale::Smoke,
        }
    }

    /// Corpus generation parameters.
    pub fn corpus_config(&self) -> CorpusConfig {
        match self {
            Scale::Smoke => CorpusConfig {
                seed: 0xda7a,
                dbs_per_domain: 1,
                queries_per_db: 8,
                facts_per_db: 4,
            },
            Scale::Full => CorpusConfig {
                seed: 0xda7a,
                dbs_per_domain: 2,
                queries_per_db: 40,
                facts_per_db: 16,
            },
        }
    }

    /// Architecture for a size tier.
    pub fn t5_config(&self, size: Size, vocab: usize) -> T5Config {
        match (self, size) {
            (Scale::Smoke, Size::Base) => T5Config {
                vocab,
                d_model: 32,
                d_ff: 64,
                heads: 2,
                enc_layers: 1,
                dec_layers: 1,
                dropout: 0.0,
                positional: Positional::RelativeBias,
            },
            (Scale::Smoke, Size::Large) => T5Config {
                vocab,
                d_model: 48,
                d_ff: 96,
                heads: 2,
                enc_layers: 1,
                dec_layers: 1,
                dropout: 0.0,
                positional: Positional::RelativeBias,
            },
            (Scale::Full, Size::Base) => T5Config {
                vocab,
                d_model: 64,
                d_ff: 128,
                heads: 4,
                enc_layers: 2,
                dec_layers: 2,
                dropout: 0.05,
                positional: Positional::RelativeBias,
            },
            (Scale::Full, Size::Large) => T5Config {
                vocab,
                d_model: 96,
                d_ff: 192,
                heads: 6,
                enc_layers: 2,
                dec_layers: 2,
                dropout: 0.05,
                positional: Positional::RelativeBias,
            },
        }
    }

    /// Optimizer steps for pre-training phases.
    pub fn pretrain_steps(&self) -> usize {
        match self {
            Scale::Smoke => 20,
            Scale::Full => 800,
        }
    }

    /// Optimizer steps for fine-tuning (per run).
    pub fn finetune_steps(&self) -> usize {
        match self {
            Scale::Smoke => 25,
            Scale::Full => 600,
        }
    }

    /// Gradient-accumulation micro-batch.
    pub fn accum(&self) -> usize {
        match self {
            Scale::Smoke => 4,
            Scale::Full => 8,
        }
    }

    /// Maximum tokenized sequence length (truncation bound; the paper uses
    /// 512 subwords, we use fewer, larger word tokens).
    pub fn max_len(&self) -> usize {
        match self {
            Scale::Smoke => 96,
            Scale::Full => 128,
        }
    }

    /// Maximum generated output tokens.
    pub fn max_out(&self) -> usize {
        match self {
            Scale::Smoke => 40,
            Scale::Full => 48,
        }
    }

    /// Cap on evaluation examples per subset.
    pub fn eval_cap(&self) -> usize {
        match self {
            Scale::Smoke => 12,
            Scale::Full => 60,
        }
    }

    /// Numeric-sanitizer schedule for training loops, read from
    /// `DATAVIST5_SANITIZE` (`off`, `first`, `every:<n>`). Defaults to
    /// scanning the first step only — one tape scan per run.
    pub fn sanitizer_mode(&self) -> SanitizerMode {
        SanitizerMode::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_is_larger_everywhere() {
        let s = Scale::Smoke;
        let f = Scale::Full;
        assert!(f.pretrain_steps() > s.pretrain_steps());
        assert!(f.finetune_steps() > s.finetune_steps());
        assert!(f.eval_cap() > s.eval_cap());
        assert!(f.max_len() > s.max_len());
        assert!(f.corpus_config().queries_per_db > s.corpus_config().queries_per_db);
    }

    #[test]
    fn large_tier_exceeds_base_tier() {
        for scale in [Scale::Smoke, Scale::Full] {
            let b = scale.t5_config(Size::Base, 100);
            let l = scale.t5_config(Size::Large, 100);
            assert!(l.d_model > b.d_model);
            assert!(l.d_ff > b.d_ff);
        }
    }

    #[test]
    fn env_defaults_to_smoke() {
        std::env::remove_var("DATAVIST5_SCALE");
        assert_eq!(Scale::from_env(), Scale::Smoke);
    }

    #[test]
    fn size_labels_follow_paper() {
        assert_eq!(Size::Base.label(), "220M");
        assert_eq!(Size::Large.label(), "770M");
    }
}
