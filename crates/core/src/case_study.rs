//! Case-study assembly (Tables V, VII, X, XI and Figures 6–9).
//!
//! A case study takes one held-out example and every model's prediction
//! for it, marks each prediction correct/incorrect with a task-appropriate
//! criterion, and — for text-to-vis — renders each predicted DV query as
//! an ASCII chart (the reproduction's stand-in for the paper's bitmap
//! figures; unexecutable predictions render as the paper's "No image due
//! to errors in the DV query").

use corpus::Corpus;
use metrics::rouge_n;

use crate::data::{strip_prefix, Task, TaskExample};
use crate::eval::score_text_to_vis;

/// One model's row in a case-study table.
#[derive(Debug, Clone)]
pub struct CaseRow {
    pub model: String,
    pub output: String,
    pub correct: bool,
    /// ASCII chart for text-to-vis predictions (None when the query does
    /// not execute).
    pub chart: Option<String>,
}

/// A fully assembled case study.
#[derive(Debug, Clone)]
pub struct CaseStudy {
    pub task: Task,
    pub input: String,
    pub reference: String,
    pub rows: Vec<CaseRow>,
}

/// Marks a prediction correct under the task's criterion: full EM for
/// text-to-vis, exact string match for FeVisQA answers, and ROUGE-1 ≥ 0.7
/// for the free-text tasks (matching the paper's ✓/✗ judgements).
pub fn is_correct(task: Task, prediction: &str, example: &TaskExample, corpus: &Corpus) -> bool {
    let reference = strip_prefix(task, &example.output);
    match task {
        Task::TextToVis => {
            let gold = example.gold_query.as_deref().unwrap_or(&reference);
            score_text_to_vis(prediction, gold, corpus, &example.db_name).exact()
        }
        Task::FeVisQa => prediction.trim().eq_ignore_ascii_case(reference.trim()),
        Task::VisToText | Task::TableToText => {
            rouge_n(&[(prediction.to_string(), reference.clone())], 1) >= 0.7
        }
    }
}

/// Renders a predicted DV query as an ASCII chart against the example's
/// database, mirroring Figure 6.
pub fn render_chart(prediction: &str, db_name: &str, corpus: &Corpus) -> Option<String> {
    let db = corpus.database(db_name)?;
    let query = vql::parse_query(prediction).ok()?;
    let result = storage::execute(&query, db).ok()?;
    let chart = storage::to_chart(&query, &result);
    Some(chart.render_ascii(28))
}

/// Assembles a case study from model predictions.
pub fn build_case(
    example: &TaskExample,
    corpus: &Corpus,
    predictions: &[(String, String)],
) -> CaseStudy {
    let rows = predictions
        .iter()
        .map(|(model, output)| {
            let chart = if example.task == Task::TextToVis {
                render_chart(output, &example.db_name, corpus)
            } else {
                None
            };
            CaseRow {
                model: model.clone(),
                correct: is_correct(example.task, output, example, corpus),
                output: output.clone(),
                chart,
            }
        })
        .collect();
    CaseStudy {
        task: example.task,
        input: example.input.clone(),
        reference: strip_prefix(example.task, &example.output),
        rows,
    }
}

impl CaseStudy {
    /// Formats the case study as the paper's tables do: ground truth, then
    /// one row per model with a ✓/✗ marker and (for text-to-vis) either
    /// the rendered chart or the "no image" note.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("Input        | {}\n", self.input));
        out.push_str(&format!("Ground-truth | {}\n", self.reference));
        for row in &self.rows {
            let mark = if row.correct { "(ok)" } else { "(x)" };
            out.push_str(&format!("{} {} | {}\n", row.model, mark, row.output));
            if self.task == Task::TextToVis {
                match &row.chart {
                    Some(chart) => {
                        for line in chart.lines() {
                            out.push_str(&format!("    {line}\n"));
                        }
                    }
                    None => out.push_str("    No image due to errors in the DV query\n"),
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::TaskDatasets;
    use corpus::{CorpusConfig, Split};

    fn fixtures() -> (Corpus, TaskDatasets) {
        let corpus = corpus::Corpus::generate(&CorpusConfig {
            seed: 23,
            dbs_per_domain: 1,
            queries_per_db: 6,
            facts_per_db: 3,
        });
        let datasets = TaskDatasets::build(&corpus);
        (corpus, datasets)
    }

    #[test]
    fn gold_prediction_is_correct_and_renders() {
        let (corpus, datasets) = fixtures();
        let e = &datasets.of(Task::TextToVis, Split::Test)[0];
        let gold = e.gold_query.clone().unwrap();
        assert!(is_correct(Task::TextToVis, &gold, e, &corpus));
        let chart = render_chart(&gold, &e.db_name, &corpus);
        assert!(chart.is_some());
        assert!(chart.unwrap().contains('#'));
    }

    #[test]
    fn broken_query_renders_no_image() {
        let (corpus, datasets) = fixtures();
        let e = &datasets.of(Task::TextToVis, Split::Test)[0];
        assert!(render_chart("visualize bar select nothing", &e.db_name, &corpus).is_none());
        let case = build_case(
            e,
            &corpus,
            &[("Broken".into(), "visualize bar select nothing".into())],
        );
        assert!(case
            .render()
            .contains("No image due to errors in the DV query"));
    }

    #[test]
    fn fevisqa_correctness_is_exact_match() {
        let (corpus, datasets) = fixtures();
        let e = &datasets.of(Task::FeVisQa, Split::Test)[0];
        let gold = strip_prefix(Task::FeVisQa, &e.output);
        assert!(is_correct(Task::FeVisQa, &gold, e, &corpus));
        assert!(!is_correct(Task::FeVisQa, "wrong answer", e, &corpus));
    }

    #[test]
    fn vis_to_text_uses_rouge_threshold() {
        let (corpus, datasets) = fixtures();
        let e = &datasets.of(Task::VisToText, Split::Test)[0];
        let gold = strip_prefix(Task::VisToText, &e.output);
        assert!(is_correct(Task::VisToText, &gold, e, &corpus));
        assert!(!is_correct(
            Task::VisToText,
            "completely unrelated words",
            e,
            &corpus
        ));
    }

    #[test]
    fn render_lists_every_model() {
        let (corpus, datasets) = fixtures();
        let e = &datasets.of(Task::TextToVis, Split::Test)[0];
        let gold = e.gold_query.clone().unwrap();
        let case = build_case(
            e,
            &corpus,
            &[
                ("ModelA".into(), gold.clone()),
                ("ModelB".into(), "garbage".into()),
            ],
        );
        let text = case.render();
        assert!(text.contains("ModelA (ok)"));
        assert!(text.contains("ModelB (x)"));
        assert!(text.contains("Ground-truth"));
    }
}
