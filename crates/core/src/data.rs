//! Unified task encoding and dataset assembly.
//!
//! Every task is rendered into the paper's unified text surface with task
//! prefix tokens (Figure 5): `<nl>`, `<vql>`, `<schema>`, `<table>`,
//! `<question>`, `<answer>`, `<description>`. Inputs compose the segments
//! each task needs; outputs carry the prefix of their corpus so the
//! Bidirectional Dual-Corpus objective can swap direction without
//! ambiguity.

use corpus::{Corpus, Split};
use vql::encode::{encode_schema, encode_table, LinearTable};
use vql::schema::DbSchema;

use crate::filtration::filter_schema;

/// The four downstream tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Task {
    TextToVis,
    VisToText,
    FeVisQa,
    TableToText,
}

impl Task {
    pub const ALL: [Task; 4] = [
        Task::TextToVis,
        Task::VisToText,
        Task::FeVisQa,
        Task::TableToText,
    ];

    pub fn label(&self) -> &'static str {
        match self {
            Task::TextToVis => "text-to-vis",
            Task::VisToText => "vis-to-text",
            Task::FeVisQa => "fevisqa",
            Task::TableToText => "table-to-text",
        }
    }

    /// The prefix token of this task's *output* corpus.
    pub fn output_prefix(&self) -> &'static str {
        match self {
            Task::TextToVis => "<vql>",
            Task::VisToText | Task::TableToText => "<description>",
            Task::FeVisQa => "<answer>",
        }
    }
}

/// One encoded example ready for tokenization.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskExample {
    pub task: Task,
    pub db_name: String,
    pub split: Split,
    pub input: String,
    pub output: String,
    /// Text-to-vis only: the gold standardized query.
    pub gold_query: Option<String>,
    /// Text-to-vis only: whether the gold query joins tables.
    pub has_join: bool,
}

/// Builds the input text for text-to-vis: `<nl> question <schema> …` with
/// schema filtration applied (§III-B).
pub fn text_to_vis_input(question: &str, schema: &DbSchema) -> String {
    let sub = filter_schema(question, schema);
    format!("<nl> {question} <schema> {}", encode_schema(&sub))
}

/// Builds the input for vis-to-text: `<vql> query <schema> …` restricted to
/// the tables the query touches.
pub fn vis_to_text_input(query_text: &str, schema: &DbSchema) -> String {
    let sub = match vql::parse_query(query_text) {
        Ok(q) => {
            let tables = q.tables();
            let restricted = schema.restricted_to(&tables);
            if restricted.tables.is_empty() {
                schema.clone()
            } else {
                restricted
            }
        }
        Err(_) => schema.clone(),
    };
    format!("<vql> {query_text} <schema> {}", encode_schema(&sub))
}

/// Builds the input for table-to-text: `<table> …`.
pub fn table_to_text_input(table: &LinearTable) -> String {
    format!("<table> {}", encode_table(table))
}

/// Builds the input for FeVisQA:
/// `<question> q <vql> query <schema> … <table> …`.
pub fn fevisqa_input(
    question: &str,
    query_text: &str,
    schema: &DbSchema,
    table: &LinearTable,
) -> String {
    let sub = match vql::parse_query(query_text) {
        Ok(q) => {
            let restricted = schema.restricted_to(&q.tables());
            if restricted.tables.is_empty() {
                schema.clone()
            } else {
                restricted
            }
        }
        Err(_) => schema.clone(),
    };
    format!(
        "<question> {question} <vql> {query_text} <schema> {} <table> {}",
        encode_schema(&sub),
        encode_table(table)
    )
}

/// One serving-time request for any of the four tasks, carrying the raw
/// ingredients (question/query/schema/table) rather than a pre-encoded
/// input string.
///
/// [`TaskRequest::input_text`] renders the paper's unified encoding for
/// the request — including *per-request* schema filtration for
/// text-to-vis and query-table restriction for vis-to-text / FeVisQA —
/// so the serving front door (`crates/serve`) and the offline dataset
/// builder ([`TaskDatasets::build`]) share one construction path.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskRequest {
    TextToVis {
        question: String,
        schema: DbSchema,
    },
    VisToText {
        query: String,
        schema: DbSchema,
    },
    FeVisQa {
        question: String,
        query: String,
        schema: DbSchema,
        table: LinearTable,
    },
    TableToText {
        table: LinearTable,
    },
}

impl TaskRequest {
    /// Which of the four tasks this request targets.
    pub fn task(&self) -> Task {
        match self {
            TaskRequest::TextToVis { .. } => Task::TextToVis,
            TaskRequest::VisToText { .. } => Task::VisToText,
            TaskRequest::FeVisQa { .. } => Task::FeVisQa,
            TaskRequest::TableToText { .. } => Task::TableToText,
        }
    }

    /// Renders the unified model input for this request, running schema
    /// filtration (§III-B) on the request's own question/query — the
    /// serving-path twin of the builders above.
    pub fn input_text(&self) -> String {
        match self {
            TaskRequest::TextToVis { question, schema } => text_to_vis_input(question, schema),
            TaskRequest::VisToText { query, schema } => vis_to_text_input(query, schema),
            TaskRequest::FeVisQa {
                question,
                query,
                schema,
                table,
            } => fevisqa_input(question, query, schema, table),
            TaskRequest::TableToText { table } => table_to_text_input(table),
        }
    }

    /// The serving engine's prefix-cache key for this request: the
    /// content hash of the standardized, filtered, tokenized input —
    /// exactly the token sequence `serve::ServeRequest::from_task`
    /// admits. Two requests share cached encoder state iff their keys
    /// (and underlying tokens) match, so the key must be computed over
    /// the *post-filtration* encoding: the same question against a
    /// different schema, or vice versa, keys differently.
    pub fn cache_key(&self, tok: &tokenizer::WordTokenizer) -> u64 {
        nn::prefix_hash(&tok.encode_with_eos(&self.input_text()))
    }
}

/// Prefixes an output with its corpus token.
pub fn prefixed_output(task: Task, text: &str) -> String {
    format!("{} {text}", task.output_prefix())
}

/// Strips a task's output prefix from a model prediction.
pub fn strip_prefix(task: Task, prediction: &str) -> String {
    prediction
        .trim()
        .strip_prefix(task.output_prefix())
        .unwrap_or(prediction)
        .trim()
        .to_string()
}

/// All task datasets, encoded and split.
#[derive(Debug, Clone, Default)]
pub struct TaskDatasets {
    pub examples: Vec<TaskExample>,
}

impl TaskDatasets {
    /// Encodes the whole corpus into task examples.
    pub fn build(corpus: &Corpus) -> TaskDatasets {
        let mut examples = Vec::new();
        for e in &corpus.nvbench {
            let Some(db) = corpus.database(&e.db_name) else {
                continue;
            };
            let schema = db.schema();
            let split = corpus.split_of(&e.db_name);
            examples.push(TaskExample {
                task: Task::TextToVis,
                db_name: e.db_name.clone(),
                split,
                input: text_to_vis_input(&e.question, &schema),
                output: prefixed_output(Task::TextToVis, &e.query),
                gold_query: Some(e.query.clone()),
                has_join: e.has_join,
            });
            examples.push(TaskExample {
                task: Task::VisToText,
                db_name: e.db_name.clone(),
                split,
                input: vis_to_text_input(&e.query, &schema),
                output: prefixed_output(Task::VisToText, &e.description),
                gold_query: None,
                has_join: e.has_join,
            });
        }
        for e in &corpus.fevisqa {
            let Some(db) = corpus.database(&e.db_name) else {
                continue;
            };
            let schema = db.schema();
            examples.push(TaskExample {
                task: Task::FeVisQa,
                db_name: e.db_name.clone(),
                split: corpus.split_of(&e.db_name),
                input: fevisqa_input(&e.question, &e.query, &schema, &e.table),
                output: prefixed_output(Task::FeVisQa, &e.answer),
                gold_query: None,
                has_join: false,
            });
        }
        for e in corpus.chart2text.iter().chain(corpus.wikitabletext.iter()) {
            examples.push(TaskExample {
                task: Task::TableToText,
                db_name: e.db_name.clone(),
                split: corpus.split_of(&e.db_name),
                input: table_to_text_input(&e.table),
                output: prefixed_output(Task::TableToText, &e.description),
                gold_query: None,
                has_join: false,
            });
        }
        TaskDatasets { examples }
    }

    /// Examples of one task in one split.
    pub fn of(&self, task: Task, split: Split) -> Vec<&TaskExample> {
        self.examples
            .iter()
            .filter(|e| e.task == task && e.split == split)
            .collect()
    }

    /// Every text surface in the datasets (vocabulary fitting). Includes
    /// all splits: the word-level tokenizer stands in for an open subword
    /// vocabulary, which would cover unseen schema identifiers by
    /// composition.
    pub fn all_texts(&self) -> impl Iterator<Item = &str> {
        self.examples
            .iter()
            .flat_map(|e| [e.input.as_str(), e.output.as_str()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corpus::CorpusConfig;

    fn datasets() -> TaskDatasets {
        let corpus = Corpus::generate(&CorpusConfig {
            seed: 11,
            dbs_per_domain: 1,
            queries_per_db: 5,
            facts_per_db: 3,
        });
        TaskDatasets::build(&corpus)
    }

    #[test]
    fn builds_examples_for_all_tasks_and_splits() {
        let d = datasets();
        for task in Task::ALL {
            assert!(
                !d.of(task, Split::Train).is_empty(),
                "no train data for {}",
                task.label()
            );
            assert!(
                !d.of(task, Split::Test).is_empty(),
                "no test data for {}",
                task.label()
            );
        }
    }

    #[test]
    fn text_to_vis_inputs_carry_both_prefixes() {
        let d = datasets();
        for e in d.of(Task::TextToVis, Split::Train).iter().take(10) {
            assert!(e.input.starts_with("<nl> "), "{}", e.input);
            assert!(e.input.contains("<schema> "), "{}", e.input);
            assert!(e.output.starts_with("<vql> "), "{}", e.output);
            assert!(e.gold_query.is_some());
        }
    }

    #[test]
    fn fevisqa_inputs_have_all_four_segments() {
        let d = datasets();
        for e in d.of(Task::FeVisQa, Split::Train).iter().take(10) {
            for seg in ["<question> ", "<vql> ", "<schema> ", "<table> "] {
                assert!(e.input.contains(seg), "missing {seg} in {}", e.input);
            }
            assert!(e.output.starts_with("<answer> "));
        }
    }

    #[test]
    fn strip_prefix_roundtrips() {
        for task in Task::ALL {
            let out = prefixed_output(task, "hello world");
            assert_eq!(strip_prefix(task, &out), "hello world");
        }
        // Un-prefixed predictions survive unchanged.
        assert_eq!(strip_prefix(Task::TextToVis, "raw text"), "raw text");
    }

    #[test]
    fn filtration_shrinks_schema_in_inputs() {
        let d = datasets();
        // Inputs referencing only one table should not embed both tables.
        let narrowed = d
            .of(Task::TextToVis, Split::Train)
            .iter()
            .filter(|e| {
                let schema_part = e.input.split("<schema> ").nth(1).unwrap_or("");
                schema_part.matches(" : ").count() == 1
            })
            .count();
        assert!(narrowed > 0, "filtration never narrowed a schema");
    }

    #[test]
    fn vis_to_text_restricts_to_query_tables() {
        let d = datasets();
        for e in d.of(Task::VisToText, Split::Train).iter().take(10) {
            let query_part = e
                .input
                .strip_prefix("<vql> ")
                .unwrap()
                .split(" <schema> ")
                .next()
                .unwrap();
            let q = vql::parse_query(query_part).unwrap();
            let schema_part = e.input.split("<schema> ").nth(1).unwrap();
            for t in q.tables() {
                assert!(schema_part.contains(&format!("{t} :")), "{schema_part}");
            }
        }
    }

    #[test]
    fn task_request_matches_dataset_builders() {
        use vql::schema::{DbSchema, TableSchema};
        let schema = DbSchema::new(
            "gallery",
            vec![
                TableSchema::new("artist", vec!["artist_id".into(), "country".into()]),
                TableSchema::new("exhibit", vec!["theme".into(), "ticket_price".into()]),
            ],
        );
        let req = TaskRequest::TextToVis {
            question: "pie chart of artist country counts".into(),
            schema: schema.clone(),
        };
        assert_eq!(req.task(), Task::TextToVis);
        assert_eq!(
            req.input_text(),
            text_to_vis_input("pie chart of artist country counts", &schema)
        );
        // Per-request filtration applies: only the referenced table stays.
        assert!(req.input_text().contains("artist"));
        assert!(!req.input_text().contains("ticket_price"));

        let table = LinearTable::new(vec!["theme".into()], vec![vec!["modern".into()]]);
        let req = TaskRequest::FeVisQa {
            question: "what is shown".into(),
            query: "visualize bar select theme , count ( theme ) from exhibit".into(),
            schema: schema.clone(),
            table: table.clone(),
        };
        assert_eq!(req.task(), Task::FeVisQa);
        assert!(req.input_text().starts_with("<question> "));

        let req = TaskRequest::TableToText {
            table: table.clone(),
        };
        assert_eq!(req.input_text(), table_to_text_input(&table));
    }

    #[test]
    fn all_texts_covers_inputs_and_outputs() {
        let d = datasets();
        let n = d.all_texts().count();
        assert_eq!(n, d.examples.len() * 2);
    }

    #[test]
    fn cache_key_hashes_the_standardized_tokenized_input() {
        use vql::schema::{DbSchema, TableSchema};
        let schema = DbSchema::new(
            "gallery",
            vec![TableSchema::new("artist", vec!["country".into()])],
        );
        let req = TaskRequest::TextToVis {
            question: "bar chart of artist country".into(),
            schema: schema.clone(),
        };
        let tok = tokenizer::WordTokenizer::fit([req.input_text().as_str()], 1);
        // The key is exactly the hash of the tokens the serving engine
        // admits for this request.
        assert_eq!(
            req.cache_key(&tok),
            nn::prefix_hash(&tok.encode_with_eos(&req.input_text()))
        );
        // Same standardized input -> same key; different question ->
        // different key.
        assert_eq!(req.cache_key(&tok), req.clone().cache_key(&tok));
        let other = TaskRequest::TextToVis {
            question: "pie chart of artist country".into(),
            schema,
        };
        assert_ne!(req.cache_key(&tok), other.cache_key(&tok));
    }
}
