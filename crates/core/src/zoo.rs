//! The model zoo: every system the paper compares, buildable and trainable
//! from one place.
//!
//! | Paper model | Reproduction recipe |
//! |---|---|
//! | Seq2Vis | attention LSTM seq2seq, single-task training |
//! | Transformer | sinusoidal-position encoder–decoder, single-task |
//! | ncNet | Transformer + grammar-constrained decoding |
//! | RGVisNet | TF-IDF prototype retrieval + code-pretrained refiner |
//! | BART | denoising (MLM) text-pretrained model, SFT |
//! | CodeT5+ (220M/770M) | code-pretrained init, SFT |
//! | GPT-4 few-shot | retrieval + schema-adaptation simulator (no training) |
//! | Llama2-7b / Mistral-7b + LoRA | generic-text-pretrained large model, LoRA adapters |
//! | DataVisT5 (220M/770M) | code init → hybrid pre-training → MFT |
//! | T5-large (ablation) | generic-text-pretrained init, SFT |
//!
//! Pre-trained checkpoints are cached under `target/datavist5-ckpt/` so a
//! fleet of fine-tunes shares each pre-training run.

use std::path::PathBuf;

use corpus::{Corpus, Split};
use nn::ckpt::{self, StdIo};
use nn::decode::{
    batched_constrained_decode, batched_greedy_decode, constrained_decode, greedy_decode,
};
use nn::lstm::{LstmConfig, LstmSeq2Seq};
use nn::param::ParamSet;
use nn::t5::{DecodeState, Positional, T5Model};
use nn::train::{train_seq2seq, CkptConfig, Example, TrainConfig};
use tensor::XorShift;
use tokenizer::{special, WordTokenizer};
use vql::grammar::{GrammarConstraint, EOS as GRAMMAR_EOS};

use crate::config::{Scale, Size};
use crate::data::{strip_prefix, Task, TaskDatasets, TaskExample};
use crate::finetune::{multi_task_examples, single_task_examples, tokenize_pair};
use crate::pretrain::{pretrain, Objective, PretrainConfig, PretrainData};
use crate::retrieval::TfIdfIndex;

/// Fine-tuning regime for the DataVisT5 family (Table XII ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Regime {
    /// Multi-task fine-tuning with temperature-2 up-sampling.
    Mft,
    /// MFT but pre-training omits the BDC objective.
    MftNoBdc,
    /// MFT with proportional (temperature-1) mixing.
    MftNoUpsampling,
    /// No fine-tuning at all: zero-shot from the pre-trained checkpoint.
    ZeroShot,
    /// Single-task fine-tuning.
    Sft,
}

/// Every comparison system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    Seq2Vis,
    Transformer,
    NcNet,
    RgVisNet,
    Bart,
    CodeT5Sft(Size),
    T5Sft(Size),
    Gpt4FewShot,
    Llama2Lora,
    Mistral7bLora,
    DataVisT5(Size, Regime),
}

impl ModelKind {
    /// Display name matching the paper's tables.
    pub fn label(&self) -> String {
        match self {
            ModelKind::Seq2Vis => "Seq2Vis".into(),
            ModelKind::Transformer => "Transformer".into(),
            ModelKind::NcNet => "ncNet".into(),
            ModelKind::RgVisNet => "RGVisNet".into(),
            ModelKind::Bart => "BART".into(),
            ModelKind::CodeT5Sft(s) => format!("CodeT5+ ({}) +SFT", s.label()),
            ModelKind::T5Sft(s) => format!("T5-large ({}) +SFT", s.label()),
            ModelKind::Gpt4FewShot => "GPT-4 (few-shot)".into(),
            ModelKind::Llama2Lora => "LLama2-7b +LoRA".into(),
            ModelKind::Mistral7bLora => "Mistral-7b +LoRA".into(),
            ModelKind::DataVisT5(s, Regime::Mft) => format!("DataVisT5 ({}) +MFT", s.label()),
            ModelKind::DataVisT5(s, Regime::Sft) => format!("DataVisT5 ({}) +SFT", s.label()),
            ModelKind::DataVisT5(s, Regime::MftNoBdc) => {
                format!("DataVisT5 ({}) w/o BDC", s.label())
            }
            ModelKind::DataVisT5(s, Regime::MftNoUpsampling) => {
                format!("DataVisT5 ({}) w/o up-sampling", s.label())
            }
            ModelKind::DataVisT5(s, Regime::ZeroShot) => {
                format!("DataVisT5 ({}) w/o MFT", s.label())
            }
        }
    }
}

/// A trained sequence model plus its weights.
pub enum Trained {
    T5 {
        model: Box<T5Model>,
        ps: ParamSet,
    },
    Lstm {
        model: Box<LstmSeq2Seq>,
        ps: ParamSet,
    },
}

/// Anything that maps a task example to a prediction string (with the
/// output prefix stripped).
pub trait Predictor {
    fn predict(&self, example: &TaskExample) -> String;

    /// Predicts a whole slice of examples. The default maps
    /// [`Predictor::predict`]; the neural predictors override it to pack
    /// concurrent decodes into the batched inference engine
    /// ([`nn::batch::BatchedDecodeState`]), which is proven token-identical
    /// to the sequential path — overriding never changes outputs, only
    /// throughput.
    fn predict_batch(&self, examples: &[&TaskExample]) -> Vec<String> {
        examples.iter().map(|e| self.predict(e)).collect()
    }
}

/// Slot capacity the eval-path predictors hand to the batched engine.
const DECODE_SLOTS: usize = 8;

/// Run log for checkpoint-cache decisions (load vs recover vs retrain),
/// so a training fleet's behavior under faults is auditable from stderr
/// and, with the obs layer on, machine-countable from the event stream.
fn run_log(msg: impl std::fmt::Display) {
    obs::info("zoo", msg.to_string());
}

/// Shared assets: corpus, encoded datasets, tokenizer, checkpoint cache.
pub struct Zoo {
    pub scale: Scale,
    pub corpus: Corpus,
    pub datasets: TaskDatasets,
    pub tok: WordTokenizer,
    ckpt_dir: PathBuf,
}

impl Zoo {
    /// Builds the corpus, datasets, and vocabulary for a scale.
    pub fn new(scale: Scale) -> Zoo {
        let corpus = Corpus::generate(&scale.corpus_config());
        let datasets = TaskDatasets::build(&corpus);
        let tok = WordTokenizer::fit(datasets.all_texts(), 1);
        let ckpt_dir = PathBuf::from("target")
            .join("datavist5-ckpt")
            .join(match scale {
                Scale::Smoke => "smoke",
                Scale::Full => "full",
            });
        if let Err(e) = std::fs::create_dir_all(&ckpt_dir) {
            // Not fatal — every subsequent save reports its own typed
            // error — but the degraded mode must be visible in the log.
            obs::error(
                "zoo",
                format!(
                    "failed to create checkpoint dir '{}': {e}; checkpoints will not be cached",
                    ckpt_dir.display()
                ),
            );
        }
        Zoo {
            scale,
            corpus,
            datasets,
            tok,
            ckpt_dir,
        }
    }

    fn vocab_size(&self) -> usize {
        self.tok.vocab().len()
    }

    fn build_t5(&self, key: &str, size: Size, positional: Positional) -> (T5Model, ParamSet) {
        let mut ps = ParamSet::new();
        let mut rng = XorShift::new(crate::seed_of(key));
        let mut cfg = self.scale.t5_config(size, self.vocab_size());
        cfg.positional = positional;
        let model = T5Model::new(&mut ps, key, cfg, &mut rng);
        (model, ps)
    }

    /// Loads a cached checkpoint into `ps`, distinguishing *missing*
    /// (fresh start, no noise) from *corrupt* (typed error in the run
    /// log, then an attempt on the rotated last-good snapshot). Returns
    /// whether usable weights were loaded.
    fn load_cached_weights(&self, key: &str, path: &std::path::Path, ps: &mut ParamSet) -> bool {
        match ps.load(path) {
            Ok(()) => {
                run_log(format!("'{key}': loaded cached checkpoint"));
                true
            }
            Err(e) if e.is_missing() => {
                run_log(format!("'{key}': no cached checkpoint; training"));
                false
            }
            Err(e) => {
                obs::warn("zoo", format!("'{key}': cached checkpoint unusable: {e}"));
                let prev = ckpt::prev_path(path);
                match ckpt::load(&StdIo, &prev).and_then(|snap| ps.restore(&snap)) {
                    Ok(()) => {
                        obs::warn(
                            "zoo",
                            format!(
                                "'{key}': recovered from last good snapshot '{}'",
                                prev.display()
                            ),
                        );
                        true
                    }
                    Err(pe) => {
                        obs::warn(
                            "zoo",
                            format!("'{key}': no usable snapshot ({pe}); retraining from scratch"),
                        );
                        false
                    }
                }
            }
        }
    }

    /// Mid-run resume checkpoint configuration for a cache key: periodic
    /// crash-safe snapshots beside the final artifact, resumed
    /// automatically when a previous run died partway.
    fn resume_config(&self, key: &str, steps: usize) -> CkptConfig {
        CkptConfig::periodic(
            self.ckpt_dir.join(format!("{key}.resume.bin")),
            (steps / 4).max(1),
        )
    }

    /// Runs `train` once per checkpoint key, caching weights on disk.
    ///
    /// The closure receives a [`CkptConfig`] pointing at the key's resume
    /// file; training loops wire it into their config so an interrupted
    /// run continues from its last periodic snapshot instead of starting
    /// over.
    fn cached<F>(
        &self,
        key: &str,
        size: Size,
        positional: Positional,
        train: F,
    ) -> (T5Model, ParamSet)
    where
        F: FnOnce(&T5Model, &mut ParamSet, CkptConfig),
    {
        let (model, mut ps) = self.build_t5(key, size, positional);
        let path = self.ckpt_dir.join(format!("{key}.bin"));
        if self.load_cached_weights(key, &path, &mut ps) {
            return (model, ps);
        }
        train(
            &model,
            &mut ps,
            self.resume_config(key, self.scale.pretrain_steps()),
        );
        match ps.save(&path) {
            Ok(()) => {
                // The completed artifact supersedes the mid-run snapshots.
                let resume = self.ckpt_dir.join(format!("{key}.resume.bin"));
                let _ = std::fs::remove_file(ckpt::prev_path(&resume));
                let _ = std::fs::remove_file(resume);
            }
            Err(e) => obs::error("zoo", format!("'{key}': failed to save checkpoint: {e}")),
        }
        (model, ps)
    }

    /// Code-like pre-training (the CodeT5+ initialization substitute):
    /// span-corruption MLM over DV queries and schema encodings.
    pub fn code_pretrained(&self, size: Size) -> (T5Model, ParamSet) {
        let key = format!("code_pt_{}", size.label());
        self.cached(&key, size, Positional::RelativeBias, |model, ps, resume| {
            let mut data = PretrainData::default();
            for e in &self.datasets.examples {
                if e.split != Split::Train {
                    continue;
                }
                match e.task {
                    Task::TextToVis => data.mlm.push(e.output.clone()),
                    Task::VisToText => data.mlm.push(e.input.clone()),
                    _ => {}
                }
            }
            data.add_dv_knowledge(&self.corpus.databases);
            let mut cfg = PretrainConfig::at(
                self.scale.pretrain_steps(),
                self.scale.accum(),
                self.scale.max_len(),
            );
            cfg.sanitizer = self.scale.sanitizer_mode();
            cfg.ckpt = Some(resume);
            pretrain(model, ps, &self.tok, &data, Objective::MlmOnly, &cfg);
        })
    }

    /// Generic-text pre-training (the T5/BART/Llama substitute):
    /// span-corruption MLM over NL questions, descriptions, and answers.
    pub fn text_pretrained(&self, size: Size) -> (T5Model, ParamSet) {
        let key = format!("text_pt_{}", size.label());
        self.cached(&key, size, Positional::RelativeBias, |model, ps, resume| {
            let mut data = PretrainData::default();
            for e in &self.datasets.examples {
                if e.split != Split::Train {
                    continue;
                }
                match e.task {
                    Task::TextToVis => data.mlm.push(e.input.clone()),
                    Task::VisToText | Task::TableToText | Task::FeVisQa => {
                        data.mlm.push(e.output.clone())
                    }
                }
            }
            let mut cfg = PretrainConfig::at(
                self.scale.pretrain_steps(),
                self.scale.accum(),
                self.scale.max_len(),
            );
            cfg.sanitizer = self.scale.sanitizer_mode();
            cfg.ckpt = Some(resume);
            pretrain(model, ps, &self.tok, &data, Objective::MlmOnly, &cfg);
        })
    }

    /// The DataVisT5 pre-training: code init, then hybrid (or MLM-only for
    /// the ablation) objectives over the unified corpus.
    pub fn datavis_pretrained(&self, size: Size, with_bdc: bool) -> (T5Model, ParamSet) {
        let key = format!(
            "datavis_pt_{}_{}",
            size.label(),
            if with_bdc { "hybrid" } else { "mlm" }
        );
        // Start from the code checkpoint (the paper starts from CodeT5+).
        self.cached(&key, size, Positional::RelativeBias, |model, ps, resume| {
            // Warm-start: the code checkpoint was registered under another
            // prefix, so transplant via a freshly built code model.
            transplant(self, size, ps);
            let mut data = PretrainData::build(&self.datasets);
            data.add_dv_knowledge(&self.corpus.databases);
            let objective = if with_bdc {
                Objective::Hybrid
            } else {
                Objective::MlmOnly
            };
            let data = if with_bdc { data } else { data.mlm_only() };
            // Twice the generic budget: the BDC objective is the paper's
            // central transfer mechanism and trains the task mappings
            // directly.
            let mut cfg = PretrainConfig::at(
                self.scale.pretrain_steps() * 2,
                self.scale.accum(),
                self.scale.max_len(),
            );
            cfg.sanitizer = self.scale.sanitizer_mode();
            cfg.ckpt = Some(resume);
            pretrain(model, ps, &self.tok, &data, objective, &cfg);
        })
    }

    /// Fine-tuning configuration at this scale.
    fn ft_config(&self) -> TrainConfig {
        let steps = self.scale.finetune_steps();
        TrainConfig {
            steps,
            accum: self.scale.accum(),
            schedule: nn::optim::LrSchedule::warmup_rate(1e-2, 0.05, steps),
            smoothing: 0.0,
            seed: 0xf17e,
            eval_every: 0,
            doctor: true,
            sanitizer: self.scale.sanitizer_mode(),
            ckpt: None,
        }
    }

    /// Cache key for a fine-tuned (kind, task) pair. ncNet differs from
    /// the Transformer only at decode time; the two share one checkpoint.
    fn ckpt_key(kind: ModelKind, task: Option<Task>) -> String {
        let cache_kind = if kind == ModelKind::NcNet {
            ModelKind::Transformer
        } else {
            kind
        };
        format!(
            "ft_{}_{}",
            cache_kind
                .label()
                .replace([' ', '(', ')', '+', '/'], "_")
                .to_lowercase(),
            task.map(|t| t.label()).unwrap_or("multi")
        )
    }

    /// Builds and trains a comparison system for a task (single-task
    /// models) or for the multi-task mixture (`task = None`). GPT-4 is not
    /// a trainable model — use [`Zoo::gpt4_predictor`].
    pub fn train_model(&self, kind: ModelKind, task: Option<Task>) -> Trained {
        let mut tcfg = self.ft_config();
        // Fine-tunes checkpoint periodically under their cache key, so a
        // killed run resumes mid-epoch instead of restarting (GPT-4 has no
        // training loop and never reaches a config that uses this).
        tcfg.ckpt =
            Some(self.resume_config(&Self::ckpt_key(kind, task), self.scale.finetune_steps()));
        let max_len = self.scale.max_len();
        let data_for = |t: Task| -> Vec<Example> {
            single_task_examples(&self.datasets, t, &self.tok, max_len, Split::Train)
        };
        match kind {
            ModelKind::Seq2Vis => {
                let t = task.expect("Seq2Vis is single-task");
                let mut ps = ParamSet::new();
                let mut rng = XorShift::new(crate::seed_of("seq2vis"));
                let cfg = LstmConfig {
                    vocab: self.vocab_size(),
                    d_emb: self.scale.t5_config(Size::Base, 1).d_model,
                    hidden: self.scale.t5_config(Size::Base, 1).d_model,
                };
                let model = LstmSeq2Seq::new(&mut ps, "seq2vis", cfg, &mut rng);
                // The RNN baseline saturates early (it underperforms at any
                // budget in the paper, too); a third of the budget suffices.
                let mut lstm_cfg = tcfg.clone();
                lstm_cfg.steps = (tcfg.steps / 3).max(1);
                train_seq2seq(&model, &mut ps, &data_for(t), &[], &lstm_cfg);
                Trained::Lstm {
                    model: Box::new(model),
                    ps,
                }
            }
            ModelKind::Transformer | ModelKind::NcNet => {
                let t = task.expect("Transformer is single-task");
                let (model, mut ps) = self.build_t5("vanilla", Size::Base, Positional::Sinusoidal);
                train_seq2seq(&model, &mut ps, &data_for(t), &[], &tcfg);
                Trained::T5 {
                    model: Box::new(model),
                    ps,
                }
            }
            ModelKind::RgVisNet => {
                let (model, mut ps) = self.code_pretrained(Size::Base);
                let examples = self.rgvisnet_examples(Split::Train);
                train_seq2seq(&model, &mut ps, &examples, &[], &tcfg);
                Trained::T5 {
                    model: Box::new(model),
                    ps,
                }
            }
            ModelKind::Bart => {
                let t = task.expect("BART is single-task");
                let (model, mut ps) = self.text_pretrained(Size::Base);
                train_seq2seq(&model, &mut ps, &data_for(t), &[], &tcfg);
                Trained::T5 {
                    model: Box::new(model),
                    ps,
                }
            }
            ModelKind::CodeT5Sft(size) => {
                let t = task.expect("CodeT5+ SFT is single-task");
                let (model, mut ps) = self.code_pretrained(size);
                train_seq2seq(&model, &mut ps, &data_for(t), &[], &tcfg);
                Trained::T5 {
                    model: Box::new(model),
                    ps,
                }
            }
            ModelKind::T5Sft(size) => {
                let t = task.expect("T5 SFT is single-task");
                let (model, mut ps) = self.text_pretrained(size);
                train_seq2seq(&model, &mut ps, &data_for(t), &[], &tcfg);
                Trained::T5 {
                    model: Box::new(model),
                    ps,
                }
            }
            ModelKind::Llama2Lora | ModelKind::Mistral7bLora => {
                let t = task.expect("LoRA baselines are single-task");
                let (mut model, mut ps) = self.text_pretrained(Size::Large);
                let (rank, seed) = if kind == ModelKind::Llama2Lora {
                    (8, 0x11a)
                } else {
                    (16, 0x777)
                };
                let mut rng = XorShift::new(seed);
                model.lora_adapt(&mut ps, rank, 2.0 * rank as f32, &mut rng);
                let mut cfg = tcfg.clone();
                // Adapters tolerate (and need) a higher rate.
                cfg.schedule = nn::optim::LrSchedule::warmup_rate(5e-3, 0.1, cfg.steps);
                train_seq2seq(&model, &mut ps, &data_for(t), &[], &cfg);
                Trained::T5 {
                    model: Box::new(model),
                    ps,
                }
            }
            ModelKind::Gpt4FewShot => {
                panic!("GPT-4 is retrieval-based; use Zoo::gpt4_predictor")
            }
            ModelKind::DataVisT5(size, regime) => {
                let with_bdc = regime != Regime::MftNoBdc;
                let (model, mut ps) = self.datavis_pretrained(size, with_bdc);
                match regime {
                    Regime::ZeroShot => {}
                    Regime::Sft => {
                        let t = task.expect("SFT needs a task");
                        train_seq2seq(&model, &mut ps, &data_for(t), &[], &tcfg);
                    }
                    Regime::Mft | Regime::MftNoBdc | Regime::MftNoUpsampling => {
                        let temperature = if regime == Regime::MftNoUpsampling {
                            1.0
                        } else {
                            2.0
                        };
                        let mixed = multi_task_examples(
                            &self.datasets,
                            &self.tok,
                            max_len,
                            temperature,
                            0xda7a,
                        );
                        // The mixture is ~4x one task's data; scale steps so
                        // MFT sees as many epochs per task as SFT does (the
                        // paper trains both settings to convergence).
                        let mut mft_cfg = tcfg.clone();
                        mft_cfg.steps = tcfg.steps * 3;
                        mft_cfg.schedule =
                            nn::optim::LrSchedule::warmup_rate(1e-2, 0.05, mft_cfg.steps);
                        train_seq2seq(&model, &mut ps, &mixed, &[], &mft_cfg);
                    }
                }
                Trained::T5 {
                    model: Box::new(model),
                    ps,
                }
            }
        }
    }

    /// Like [`Zoo::train_model`], but caches fine-tuned weights on disk so
    /// that experiment binaries sharing a model (e.g. Tables IV, VI, VIII
    /// all evaluating the same MFT DataVisT5) train it once.
    pub fn train_model_cached(&self, kind: ModelKind, task: Option<Task>) -> Trained {
        let key = Self::ckpt_key(kind, task);
        let path = self.ckpt_dir.join(format!("{key}.bin"));
        if let Some(mut trained) = self.build_untrained(kind) {
            let loaded = match &mut trained {
                Trained::T5 { ps, .. } => self.load_cached_weights(&key, &path, ps),
                Trained::Lstm { ps, .. } => self.load_cached_weights(&key, &path, ps),
            };
            if loaded {
                return trained;
            }
        }
        let trained = self.train_model(kind, task);
        let ps = match &trained {
            Trained::T5 { ps, .. } => ps,
            Trained::Lstm { ps, .. } => ps,
        };
        match ps.save(&path) {
            Ok(()) => {
                let resume = self.ckpt_dir.join(format!("{key}.resume.bin"));
                let _ = std::fs::remove_file(ckpt::prev_path(&resume));
                let _ = std::fs::remove_file(resume);
            }
            Err(e) => obs::error("zoo", format!("'{key}': failed to save checkpoint: {e}")),
        }
        trained
    }

    /// Rebuilds a model's architecture (identical parameter names and
    /// shapes) without training, for checkpoint loading.
    fn build_untrained(&self, kind: ModelKind) -> Option<Trained> {
        match kind {
            ModelKind::Seq2Vis => {
                let mut ps = ParamSet::new();
                let mut rng = XorShift::new(crate::seed_of("seq2vis"));
                let cfg = LstmConfig {
                    vocab: self.vocab_size(),
                    d_emb: self.scale.t5_config(Size::Base, 1).d_model,
                    hidden: self.scale.t5_config(Size::Base, 1).d_model,
                };
                let model = LstmSeq2Seq::new(&mut ps, "seq2vis", cfg, &mut rng);
                Some(Trained::Lstm {
                    model: Box::new(model),
                    ps,
                })
            }
            ModelKind::Transformer | ModelKind::NcNet => {
                let (model, ps) = self.build_t5("vanilla", Size::Base, Positional::Sinusoidal);
                Some(Trained::T5 {
                    model: Box::new(model),
                    ps,
                })
            }
            ModelKind::RgVisNet => {
                let (model, ps) =
                    self.build_t5("code_pt_220M", Size::Base, Positional::RelativeBias);
                Some(Trained::T5 {
                    model: Box::new(model),
                    ps,
                })
            }
            ModelKind::Bart => {
                let (model, ps) =
                    self.build_t5("text_pt_220M", Size::Base, Positional::RelativeBias);
                Some(Trained::T5 {
                    model: Box::new(model),
                    ps,
                })
            }
            ModelKind::CodeT5Sft(size) => {
                let key = format!("code_pt_{}", size.label());
                let (model, ps) = self.build_t5(&key, size, Positional::RelativeBias);
                Some(Trained::T5 {
                    model: Box::new(model),
                    ps,
                })
            }
            ModelKind::T5Sft(size) => {
                let key = format!("text_pt_{}", size.label());
                let (model, ps) = self.build_t5(&key, size, Positional::RelativeBias);
                Some(Trained::T5 {
                    model: Box::new(model),
                    ps,
                })
            }
            ModelKind::Llama2Lora | ModelKind::Mistral7bLora => {
                let (mut model, mut ps) =
                    self.build_t5("text_pt_770M", Size::Large, Positional::RelativeBias);
                let (rank, seed) = if kind == ModelKind::Llama2Lora {
                    (8, 0x11a)
                } else {
                    (16, 0x777)
                };
                let mut rng = XorShift::new(seed);
                model.lora_adapt(&mut ps, rank, 2.0 * rank as f32, &mut rng);
                Some(Trained::T5 {
                    model: Box::new(model),
                    ps,
                })
            }
            ModelKind::Gpt4FewShot => None,
            ModelKind::DataVisT5(size, regime) => {
                let with_bdc = regime != Regime::MftNoBdc;
                let key = format!(
                    "datavis_pt_{}_{}",
                    size.label(),
                    if with_bdc { "hybrid" } else { "mlm" }
                );
                let (model, ps) = self.build_t5(&key, size, Positional::RelativeBias);
                Some(Trained::T5 {
                    model: Box::new(model),
                    ps,
                })
            }
        }
    }

    /// RGVisNet example transformation: append the retrieved prototype
    /// query to the input.
    fn rgvisnet_examples(&self, split: Split) -> Vec<Example> {
        let train = self.datasets.of(Task::TextToVis, Split::Train);
        let questions: Vec<String> = train.iter().map(|e| e.input.clone()).collect();
        let index = TfIdfIndex::build(&questions);
        self.datasets
            .of(Task::TextToVis, split)
            .into_iter()
            .map(|e| {
                let input = self.rgvisnet_input(&index, &train, e);
                tokenize_pair(&self.tok, &input, &e.output, self.scale.max_len())
            })
            .collect()
    }

    fn rgvisnet_input(
        &self,
        index: &TfIdfIndex,
        train: &[&TaskExample],
        example: &TaskExample,
    ) -> String {
        // Retrieve the nearest *other* training example as the prototype.
        let mut proto = "";
        for cand in index.top_k(&example.input, 2) {
            if train[cand].input != example.input {
                proto = train[cand].gold_query.as_deref().unwrap_or("");
                break;
            }
        }
        format!("{} <vql> {proto}", example.input)
    }

    /// A neural predictor over a trained model.
    pub fn predictor<'z>(&'z self, kind: ModelKind, trained: Trained) -> Box<dyn Predictor + 'z> {
        match kind {
            ModelKind::NcNet => Box::new(ConstrainedPredictor { zoo: self, trained }),
            ModelKind::RgVisNet => {
                let train = self
                    .datasets
                    .of(Task::TextToVis, Split::Train)
                    .into_iter()
                    .cloned()
                    .collect::<Vec<_>>();
                let questions: Vec<String> = train.iter().map(|e| e.input.clone()).collect();
                Box::new(RgVisNetPredictor {
                    zoo: self,
                    trained,
                    index: TfIdfIndex::build(&questions),
                    train,
                })
            }
            _ => Box::new(NeuralPredictor { zoo: self, trained }),
        }
    }

    /// The GPT-4 few-shot simulator: retrieval plus schema adaptation.
    pub fn gpt4_predictor(&self) -> Gpt4Simulator<'_> {
        Gpt4Simulator::new(self)
    }

    /// Encodes raw text into source ids, truncated to the scale's max
    /// length with a terminal EOS (shared by every decode path).
    fn encode_input(&self, input: &str) -> Vec<u32> {
        let max_len = self.scale.max_len();
        let mut ids = self.tok.encode_with_eos(input);
        if ids.len() > max_len {
            ids.truncate(max_len - 1);
            ids.push(special::EOS);
        }
        ids
    }

    /// Greedy generation for raw text input (shared by predictors).
    fn generate(&self, trained: &Trained, input: &str) -> String {
        let ids = self.encode_input(input);
        let out = match trained {
            Trained::T5 { model, ps } => {
                let mut state = DecodeState::new(model, ps, &ids);
                greedy_decode(&mut state, special::EOS, self.scale.max_out())
            }
            Trained::Lstm { model, ps } => {
                let mut state = model.start_decode(ps, &ids);
                greedy_decode(&mut state, special::EOS, self.scale.max_out())
            }
        };
        self.tok.decode(&out)
    }

    /// Greedy generation for many inputs at once. T5 models decode through
    /// the batched inference engine (one packed GEMM per layer per step,
    /// token-identical to [`Zoo::generate`]); the LSTM baseline has no
    /// batched state and falls back to per-input decoding.
    fn generate_batch(&self, trained: &Trained, inputs: &[String]) -> Vec<String> {
        match trained {
            Trained::T5 { model, ps } => {
                let srcs: Vec<Vec<u32>> = inputs.iter().map(|i| self.encode_input(i)).collect();
                let outs = batched_greedy_decode(
                    model,
                    ps,
                    &srcs,
                    special::EOS,
                    self.scale.max_out(),
                    DECODE_SLOTS,
                );
                outs.iter().map(|o| self.tok.decode(o)).collect()
            }
            Trained::Lstm { .. } => inputs.iter().map(|i| self.generate(trained, i)).collect(),
        }
    }
}

/// Plain greedy predictor.
struct NeuralPredictor<'z> {
    zoo: &'z Zoo,
    trained: Trained,
}

impl Predictor for NeuralPredictor<'_> {
    fn predict(&self, example: &TaskExample) -> String {
        let raw = self.zoo.generate(&self.trained, &example.input);
        strip_prefix(example.task, &raw)
    }

    fn predict_batch(&self, examples: &[&TaskExample]) -> Vec<String> {
        let inputs: Vec<String> = examples.iter().map(|e| e.input.clone()).collect();
        let raws = self.zoo.generate_batch(&self.trained, &inputs);
        examples
            .iter()
            .zip(raws)
            .map(|(e, raw)| strip_prefix(e.task, &raw))
            .collect()
    }
}

/// ncNet: grammar-constrained decoding against the example's schema.
struct ConstrainedPredictor<'z> {
    zoo: &'z Zoo,
    trained: Trained,
}

impl ConstrainedPredictor<'_> {
    /// Builds the grammar constraint and encoded source for one example,
    /// or `None` when the database is unknown (which predicts empty).
    fn prepare(&self, example: &TaskExample) -> Option<(GrammarConstraint, Vec<u32>)> {
        let zoo = self.zoo;
        let db = zoo.corpus.database(&example.db_name)?;
        let schema = db.schema();
        // Literal pool: question tokens that exist in the vocabulary as
        // quoted strings or numbers.
        let mut pool = Vec::new();
        for w in example.input.split_whitespace() {
            if w.parse::<f64>().is_ok() {
                pool.push(w.to_string());
            }
            let quoted = format!("'{w}'");
            if zoo.tok.vocab().id(&quoted).is_some() {
                pool.push(quoted);
            }
        }
        let grammar = GrammarConstraint::new(&schema, pool);
        Some((grammar, zoo.encode_input(&example.input)))
    }

    /// The allowed-token mask for one decode prefix. Shared verbatim by
    /// the sequential and batched paths so constrained decoding stays
    /// output-identical between them.
    fn allowed(&self, grammar: &GrammarConstraint, prefix: &[u32]) -> Vec<u32> {
        let zoo = self.zoo;
        // First token is the output-corpus marker.
        if prefix.is_empty() {
            return zoo.tok.vocab().id("<vql>").into_iter().collect();
        }
        let words: Vec<&str> = prefix[1..]
            .iter()
            .filter_map(|&id| zoo.tok.vocab().token(id))
            .collect();
        let mut allowed_ids = Vec::new();
        for w in grammar.allowed_next(&words) {
            if w == GRAMMAR_EOS {
                allowed_ids.push(special::EOS);
            } else if let Some(id) = zoo.tok.vocab().id(&w) {
                allowed_ids.push(id);
            }
        }
        allowed_ids
    }
}

impl Predictor for ConstrainedPredictor<'_> {
    fn predict(&self, example: &TaskExample) -> String {
        let Trained::T5 { model, ps } = &self.trained else {
            return String::new();
        };
        let Some((grammar, ids)) = self.prepare(example) else {
            return String::new();
        };
        let mut state = DecodeState::new(model, ps, &ids);
        let out = constrained_decode(
            &mut state,
            special::EOS,
            self.zoo.scale.max_out(),
            |prefix: &[u32]| self.allowed(&grammar, prefix),
        );
        strip_prefix(example.task, &self.zoo.tok.decode(&out))
    }

    fn predict_batch(&self, examples: &[&TaskExample]) -> Vec<String> {
        let Trained::T5 { model, ps } = &self.trained else {
            return vec![String::new(); examples.len()];
        };
        // Examples with unknown databases predict empty (as sequentially);
        // the rest share one batched constrained decode.
        let prepared: Vec<Option<(GrammarConstraint, Vec<u32>)>> =
            examples.iter().map(|e| self.prepare(e)).collect();
        let srcs: Vec<Vec<u32>> = prepared
            .iter()
            .flatten()
            .map(|(_, ids)| ids.clone())
            .collect();
        let grammars: Vec<&GrammarConstraint> = prepared.iter().flatten().map(|(g, _)| g).collect();
        let outs = batched_constrained_decode(
            model,
            ps,
            &srcs,
            special::EOS,
            self.zoo.scale.max_out(),
            DECODE_SLOTS,
            |req, prefix| self.allowed(grammars[req], prefix),
        );
        let mut outs = outs.into_iter();
        examples
            .iter()
            .zip(&prepared)
            .map(|(e, p)| {
                if p.is_some() {
                    strip_prefix(e.task, &self.zoo.tok.decode(&outs.next().unwrap()))
                } else {
                    String::new()
                }
            })
            .collect()
    }
}

/// RGVisNet: retrieve a prototype, then refine with the trained model.
struct RgVisNetPredictor<'z> {
    zoo: &'z Zoo,
    trained: Trained,
    index: TfIdfIndex,
    train: Vec<TaskExample>,
}

impl Predictor for RgVisNetPredictor<'_> {
    fn predict(&self, example: &TaskExample) -> String {
        let train_refs: Vec<&TaskExample> = self.train.iter().collect();
        let input = self.zoo.rgvisnet_input(&self.index, &train_refs, example);
        let raw = self.zoo.generate(&self.trained, &input);
        strip_prefix(example.task, &raw)
    }

    fn predict_batch(&self, examples: &[&TaskExample]) -> Vec<String> {
        let train_refs: Vec<&TaskExample> = self.train.iter().collect();
        let inputs: Vec<String> = examples
            .iter()
            .map(|e| self.zoo.rgvisnet_input(&self.index, &train_refs, e))
            .collect();
        let raws = self.zoo.generate_batch(&self.trained, &inputs);
        examples
            .iter()
            .zip(raws)
            .map(|(e, raw)| strip_prefix(e.task, &raw))
            .collect()
    }
}

/// GPT-4 few-shot simulator: nearest-neighbour retrieval with schema
/// adaptation for text-to-vis, and demonstration echoing for the
/// generative tasks — the characteristic strengths and weaknesses Table IV
/// and Table VIII report for in-context LLM prompting.
pub struct Gpt4Simulator<'z> {
    zoo: &'z Zoo,
    // BTreeMap keyed by task: lookup-only today, but prediction-adjacent
    // state stays in ordered containers so no future iteration can pick up
    // hash order (determinism audit).
    indices: std::collections::BTreeMap<Task, (TfIdfIndex, Vec<TaskExample>)>,
}

impl<'z> Gpt4Simulator<'z> {
    fn new(zoo: &'z Zoo) -> Self {
        let mut indices = std::collections::BTreeMap::new();
        for task in Task::ALL {
            let train: Vec<TaskExample> = zoo
                .datasets
                .of(task, Split::Train)
                .into_iter()
                .cloned()
                .collect();
            let docs: Vec<String> = train.iter().map(|e| e.input.clone()).collect();
            indices.insert(task, (TfIdfIndex::build(&docs), train));
        }
        Gpt4Simulator { zoo, indices }
    }
}

impl Predictor for Gpt4Simulator<'_> {
    fn predict(&self, example: &TaskExample) -> String {
        let Some((index, train)) = self.indices.get(&example.task) else {
            return String::new();
        };
        let Some(best) = index.nearest(&example.input) else {
            return String::new();
        };
        let demo = &train[best];
        match example.task {
            Task::TextToVis => {
                let proto = demo.gold_query.as_deref().unwrap_or("");
                let Some(db) = self.zoo.corpus.database(&example.db_name) else {
                    return proto.to_string();
                };
                adapt_query(proto, &db.schema())
            }
            // Zero-shot generation: strong surface fluency, weak grounding
            // — modeled as echoing the most similar demonstration's output.
            _ => strip_prefix(example.task, &demo.output),
        }
    }
}

/// Adapts a prototype DV query to a target schema: tables map positionally
/// (primary → primary), columns map by exact name where possible and by
/// position otherwise.
pub fn adapt_query(proto: &str, target: &vql::schema::DbSchema) -> String {
    let Ok(mut q) = vql::parse_query(proto) else {
        return proto.to_string();
    };
    let proto_tables: Vec<String> = q.tables().iter().map(|t| t.to_string()).collect();
    // Positional table mapping.
    let target_tables: Vec<&vql::schema::TableSchema> = target.tables.iter().collect();
    if target_tables.is_empty() {
        return proto.to_string();
    }
    let map_table = |i: usize| -> String {
        target_tables
            .get(i.min(target_tables.len() - 1))
            .map(|t| t.name.clone())
            .unwrap_or_default()
    };
    let table_of =
        |name: &str| -> usize { proto_tables.iter().position(|t| t == name).unwrap_or(0) };
    let remap_col = |c: &mut vql::ColumnRef| {
        let src_table_idx = c.table.as_deref().map(table_of).unwrap_or(0);
        let tgt = &target_tables[src_table_idx.min(target_tables.len() - 1)];
        let col = if tgt
            .columns
            .iter()
            .any(|tc| tc.eq_ignore_ascii_case(&c.column))
        {
            c.column.clone()
        } else {
            // Positional fallback within the target table.
            tgt.columns
                .get(1)
                .or_else(|| tgt.columns.first())
                .cloned()
                .unwrap_or_else(|| c.column.clone())
        };
        *c = vql::ColumnRef::qualified(tgt.name.clone(), col);
    };
    for s in &mut q.select {
        remap_col(s.column_ref_mut());
    }
    q.from = map_table(0);
    if let Some(j) = &mut q.join {
        j.table = map_table(1);
        remap_col(&mut j.left);
        remap_col(&mut j.right);
    }
    for gcol in &mut q.group_by {
        remap_col(gcol);
    }
    if let Some(o) = &mut q.order_by {
        remap_col(o.expr.column_ref_mut());
    }
    if let Some(b) = &mut q.bin {
        remap_col(&mut b.column);
    }
    for f in &mut q.filters {
        if let vql::Predicate::Compare { left, .. } = f {
            remap_col(left);
        }
    }
    q.to_string()
}

/// Transplants the code-pre-trained weights into another model of the
/// same architecture (parameters correspond positionally; only the name
/// prefix differs).
fn transplant(zoo: &Zoo, size: Size, ps: &mut ParamSet) {
    let (_, code_ps) = zoo.code_pretrained(size);
    assert_eq!(
        code_ps.len(),
        ps.len(),
        "architecture mismatch in transplant"
    );
    for i in 0..code_ps.len() {
        let src = code_ps.value(nn::param::ParamId(i)).clone();
        *ps.value_mut(nn::param::ParamId(i)) = src;
    }
}
