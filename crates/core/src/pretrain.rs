//! Hybrid pre-training objectives (§III-E).
//!
//! Two objectives over the unified cross-modal corpus:
//!
//! * **T5 span-corruption MLM** — 15% of tokens masked in spans of average
//!   length 3, each span replaced by a sentinel; the target reproduces the
//!   dropped spans behind their sentinels.
//! * **Bidirectional Dual-Corpus (BDC)** — source/target corpora of the
//!   four §IV-B mappings, with direction flipped with probability 0.5 at
//!   sampling time.
//!
//! The hybrid loss is their sum (Eq. 3), realized here as mini-batches
//! mixing examples of both kinds.

use analysis::{SanitizerMode, TapeMode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use corpus::Split;
use nn::ckpt::{self, TrainState};
use nn::optim::{AdamW, LrSchedule};
use nn::param::ParamSet;
use nn::t5::T5Model;
use nn::train::CkptConfig;
use tensor::Graph;
use tokenizer::{special, WordTokenizer};

use crate::data::TaskDatasets;

/// Pre-training corpus: translation pairs plus raw segments for MLM.
#[derive(Debug, Clone, Default)]
pub struct PretrainData {
    /// BDC source/target pairs (direction chosen at sampling time).
    pub bdc: Vec<(String, String)>,
    /// Flat segments for span corruption.
    pub mlm: Vec<String>,
}

impl PretrainData {
    /// Assembles pre-training data from the train split of every task.
    pub fn build(datasets: &TaskDatasets) -> PretrainData {
        let mut data = PretrainData::default();
        for e in &datasets.examples {
            if e.split != Split::Train {
                continue;
            }
            data.bdc.push((e.input.clone(), e.output.clone()));
            data.mlm.push(e.input.clone());
            data.mlm.push(e.output.clone());
        }
        data
    }

    /// Adds the DV-knowledge corpus: schema and table-content encodings of
    /// *every* database, all splits included.
    ///
    /// The database itself is model input, not supervision — no NL
    /// question or gold query from held-out splits enters pre-training.
    /// This is the word-level stand-in for what an open subword vocabulary
    /// gives the original CodeT5+: the ability to emit identifiers of
    /// unseen schemas. MLM reconstruction of masked schema spans is what
    /// teaches the copying skill cross-domain evaluation requires.
    pub fn add_dv_knowledge(&mut self, databases: &[storage::Database]) {
        self.mlm.extend(dv_knowledge_docs(databases));
    }

    /// MLM-only subset (the "w/o BDC" ablation keeps this part).
    pub fn mlm_only(&self) -> PretrainData {
        PretrainData {
            bdc: Vec::new(),
            mlm: self.mlm.clone(),
        }
    }
}

/// Schema and table-content encodings for a set of databases (see
/// [`PretrainData::add_dv_knowledge`]).
pub fn dv_knowledge_docs(databases: &[storage::Database]) -> Vec<String> {
    let mut docs = Vec::new();
    for db in databases {
        let schema = db.schema();
        docs.push(format!("<schema> {}", vql::encode::encode_schema(&schema)));
        for table in &db.tables {
            let tname = table.name.to_ascii_lowercase();
            let headers: Vec<String> = table
                .columns
                .iter()
                .map(|c| format!("{tname}.{}", c.name.to_ascii_lowercase()))
                .collect();
            let rows: Vec<Vec<String>> = table
                .rows
                .iter()
                .take(10)
                .map(|r| r.iter().map(|v| v.to_string()).collect())
                .collect();
            let lin = vql::encode::LinearTable::new(headers, rows);
            docs.push(format!("<table> {}", vql::encode::encode_table(&lin)));
        }
    }
    docs
}

/// Which objectives a pre-training run optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// MLM + BDC (the DataVisT5 recipe).
    Hybrid,
    /// Span corruption only ("w/o BDC" ablation; also the generic-text and
    /// code pre-training stages).
    MlmOnly,
}

/// Applies T5 span corruption to a token sequence.
///
/// Roughly `mask_ratio` of the tokens are removed in spans of mean length
/// `mean_span`; each span is replaced by the next sentinel id in the input
/// and announced by the same sentinel in the target. Returns
/// `(corrupted_input, target)`; both end with EOS.
pub fn span_corrupt(
    ids: &[u32],
    mask_ratio: f64,
    mean_span: usize,
    rng: &mut StdRng,
) -> (Vec<u32>, Vec<u32>) {
    assert!(mean_span >= 1);
    let sentinel_base = 3u32; // ids 3.. are sentinels (see tokenizer::special)
    if ids.len() < 2 {
        return ([ids, &[special::EOS]].concat(), vec![special::EOS]);
    }
    let mut input = Vec::with_capacity(ids.len());
    let mut target = Vec::new();
    let mut sentinel = 0usize;
    let mut i = 0usize;
    let per_token = mask_ratio / mean_span as f64;
    while i < ids.len() {
        let start_span = sentinel < special::NUM_SENTINELS && rng.gen_bool(per_token);
        if start_span {
            // Span length: 1..=2*mean_span-1, mean ≈ mean_span.
            let len = rng.gen_range(1..=(2 * mean_span - 1)).min(ids.len() - i);
            let tok = sentinel_base + sentinel as u32;
            input.push(tok);
            target.push(tok);
            target.extend_from_slice(&ids[i..i + len]);
            sentinel += 1;
            i += len;
        } else {
            input.push(ids[i]);
            i += 1;
        }
    }
    if target.is_empty() {
        // Guarantee at least one masked span so the objective is never
        // degenerate.
        let pos = rng.gen_range(0..input.len());
        let tok = sentinel_base;
        target.push(tok);
        target.push(input[pos]);
        input[pos] = tok;
    }
    input.push(special::EOS);
    target.push(special::EOS);
    (input, target)
}

/// Pre-training hyperparameters.
#[derive(Debug, Clone)]
pub struct PretrainConfig {
    pub steps: usize,
    pub accum: usize,
    pub peak_lr: f32,
    pub max_len: usize,
    pub seed: u64,
    /// Run the Graph Doctor's static passes on the step-0 tape.
    pub doctor: bool,
    /// Numeric sanitizer schedule (see `analysis::SanitizerMode`).
    pub sanitizer: SanitizerMode,
    /// Periodic crash-safe checkpointing and exact resume (None = off).
    pub ckpt: Option<CkptConfig>,
}

impl PretrainConfig {
    pub fn at(steps: usize, accum: usize, max_len: usize) -> Self {
        Self {
            steps,
            accum,
            // The paper pre-trains at 5e-6 on 220M params; our small model
            // wants a proportionally larger rate.
            peak_lr: 6e-3,
            max_len,
            seed: 0x9e37,
            doctor: true,
            sanitizer: SanitizerMode::FirstStep,
            ckpt: None,
        }
    }
}

/// Runs pre-training over the data with the chosen objective mix.
///
/// Returns the mean loss over the final tenth of steps. With `cfg.ckpt`
/// set, the loop checkpoints periodically (weights, Adam moments, the
/// sampling RNG stream, tail-loss accumulators) and resumes from an
/// existing checkpoint bit-identically to an uninterrupted run.
pub fn pretrain(
    model: &T5Model,
    ps: &mut ParamSet,
    tok: &WordTokenizer,
    data: &PretrainData,
    objective: Objective,
    cfg: &PretrainConfig,
) -> f32 {
    assert!(!data.mlm.is_empty(), "empty pre-training corpus");
    let _run_span = obs::span!("pretrain");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut opt = AdamW::default();
    let schedule = LrSchedule::warmup_rate(cfg.peak_lr, 0.1, cfg.steps);
    let tail_start = cfg.steps.saturating_sub(cfg.steps / 10 + 1);
    let mut tail = (0.0f32, 0usize);
    let mut start_step = 0usize;
    let mut io = cfg.ckpt.as_ref().map(|c| c.make_io());
    let mut ckpt_writes = 0usize;

    if let Some(c) = &cfg.ckpt {
        if c.resume {
            match ckpt::load_with_fallback(io.as_deref().unwrap(), &c.path) {
                Ok((snap, from_prev)) => {
                    let restored = snap.train.clone().ok_or_else(|| {
                        ckpt::CkptError::Corrupt("checkpoint has no training state".into())
                    });
                    match restored.and_then(|ts| ps.restore(&snap).map(|()| ts)) {
                        Ok(ts) => {
                            if let Some(o) = &snap.optim {
                                opt.set_steps_taken(o.steps as usize);
                            }
                            rng = StdRng::from_state(ts.rng_state);
                            tail = (ts.tail_sum, ts.tail_n as usize);
                            start_step = (ts.next_step as usize).min(cfg.steps);
                            obs::info(
                                "pretrain",
                                format!(
                                    "resumed from '{}' at step {start_step}{}",
                                    c.path.display(),
                                    if from_prev {
                                        " (last good snapshot)"
                                    } else {
                                        ""
                                    }
                                ),
                            );
                        }
                        Err(e) => obs::warn(
                            "pretrain",
                            format!(
                                "checkpoint '{}' unusable ({e}); training from scratch",
                                c.path.display()
                            ),
                        ),
                    }
                }
                Err(e) if e.is_missing() => {}
                Err(e) => obs::warn(
                    "pretrain",
                    format!(
                        "checkpoint '{}' unusable ({e}); training from scratch",
                        c.path.display()
                    ),
                ),
            }
        }
    }

    let mut write_failures = 0usize;
    for step in start_step..cfg.steps {
        let _step_span = obs::span!("step");
        let mut batch_loss = 0.0;
        for micro in 0..cfg.accum {
            let (src, tgt) = sample_example(data, objective, tok, cfg.max_len, &mut rng);
            obs::counter_add("pretrain.tokens", (src.len() + tgt.len()) as u64);
            let mut g = Graph::with_seed(cfg.seed ^ step as u64);
            let loss = model.loss(&mut g, ps, &src, &tgt, 0.0);
            if cfg.doctor && step == 0 && micro == 0 {
                let report = analysis::diagnose(&g, loss, TapeMode::Train);
                if !report.is_clean() {
                    obs::warn(
                        "pretrain",
                        format!("graph doctor (step-0 pre-training tape):\n{report}"),
                    );
                }
            }
            batch_loss += g.value(loss).data()[0];
            g.backward(loss);
            if cfg.sanitizer.active_at(step) {
                if let Some(offender) = analysis::sanitize::first_offender(&g) {
                    panic!("numeric sanitizer tripped at pre-training step {step}:\n{offender}");
                }
            }
            ps.absorb_grads(&g);
        }
        opt.step(ps, schedule.at(step), 1.0 / cfg.accum as f32);
        let mean = batch_loss / cfg.accum as f32;
        obs::gauge_set("pretrain.loss", mean as f64);
        if step >= tail_start {
            tail.0 += mean;
            tail.1 += 1;
        }
        if let Some(c) = &cfg.ckpt {
            if (step + 1) % c.every == 0 {
                ckpt_writes += 1;
                let state = TrainState {
                    rng_state: rng.state(),
                    next_step: (step + 1) as u64,
                    tail_sum: tail.0,
                    tail_n: tail.1 as u64,
                    // Pre-training samples i.i.d.; there is no epoch order
                    // or cursor to carry.
                    ..TrainState::default()
                };
                let snap = ps.snapshot(Some(&opt)).with_train(state);
                if let Err(e) = ckpt::save(io.as_deref_mut().unwrap(), &c.path, &snap) {
                    // `ckpt::save` bumps the process-wide
                    // `ckpt.write_failures` counter; the local tally feeds
                    // the end-of-run summary below.
                    write_failures += 1;
                    obs::error(
                        "pretrain",
                        format!(
                            "checkpoint write {ckpt_writes} to '{}' failed: {e}",
                            c.path.display()
                        ),
                    );
                }
                if c.kill_after == Some(ckpt_writes) {
                    warn_on_write_failures(write_failures);
                    return if tail.1 > 0 {
                        tail.0 / tail.1 as f32
                    } else {
                        0.0
                    };
                }
            }
        }
    }
    warn_on_write_failures(write_failures);
    if tail.1 > 0 {
        tail.0 / tail.1 as f32
    } else {
        0.0
    }
}

/// End-of-run summary mirroring `nn::train`: a run that skipped failed
/// checkpoint writes gets one unmissable warning with the total.
fn warn_on_write_failures(write_failures: usize) {
    if write_failures > 0 {
        obs::warn(
            "pretrain",
            format!(
                "run finished with {write_failures} failed checkpoint write(s); the on-disk snapshot may be stale"
            ),
        );
    }
}

fn sample_example(
    data: &PretrainData,
    objective: Objective,
    tok: &WordTokenizer,
    max_len: usize,
    rng: &mut StdRng,
) -> (Vec<u32>, Vec<u32>) {
    let use_bdc = objective == Objective::Hybrid && !data.bdc.is_empty() && rng.gen_bool(0.5);
    if use_bdc {
        let (a, b) = &data.bdc[rng.gen_range(0..data.bdc.len())];
        // Bidirectional: either corpus may serve as the source.
        let (src_text, tgt_text) = if rng.gen_bool(0.5) { (a, b) } else { (b, a) };
        let src = truncate(tok.encode_with_eos(src_text), max_len);
        let tgt = truncate(tok.encode_with_eos(tgt_text), max_len);
        (src, tgt)
    } else {
        let text = &data.mlm[rng.gen_range(0..data.mlm.len())];
        let ids = truncate(tok.encode(text), max_len.saturating_sub(1));
        span_corrupt(&ids, 0.15, 3, rng)
    }
}

fn truncate(mut ids: Vec<u32>, max_len: usize) -> Vec<u32> {
    if ids.len() > max_len {
        ids.truncate(max_len - 1);
        ids.push(special::EOS);
    }
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use corpus::{Corpus, CorpusConfig};
    use nn::t5::{Positional, T5Config};
    use tensor::XorShift;

    fn data_and_tok() -> (PretrainData, WordTokenizer) {
        let corpus = Corpus::generate(&CorpusConfig {
            seed: 3,
            dbs_per_domain: 1,
            queries_per_db: 4,
            facts_per_db: 2,
        });
        let datasets = TaskDatasets::build(&corpus);
        let tok = WordTokenizer::fit(datasets.all_texts(), 1);
        (PretrainData::build(&datasets), tok)
    }

    #[test]
    fn build_collects_pairs_and_segments() {
        let (data, _) = data_and_tok();
        assert!(!data.bdc.is_empty());
        assert_eq!(data.mlm.len(), data.bdc.len() * 2);
        let mlm_only = data.mlm_only();
        assert!(mlm_only.bdc.is_empty());
        assert_eq!(mlm_only.mlm.len(), data.mlm.len());
    }

    #[test]
    fn span_corrupt_masks_and_reconstructs() {
        let mut rng = StdRng::seed_from_u64(5);
        let ids: Vec<u32> = (100..160).collect();
        let (input, target) = span_corrupt(&ids, 0.15, 3, &mut rng);
        // Input shorter than original (spans collapsed) plus EOS.
        assert!(input.len() <= ids.len() + 1);
        assert_eq!(*input.last().unwrap(), special::EOS);
        assert_eq!(*target.last().unwrap(), special::EOS);
        // Sentinels appear in both input and target, in order.
        let in_sents: Vec<u32> = input
            .iter()
            .copied()
            .filter(|&t| (3..67).contains(&t))
            .collect();
        let tgt_sents: Vec<u32> = target
            .iter()
            .copied()
            .filter(|&t| (3..67).contains(&t))
            .collect();
        assert_eq!(in_sents, tgt_sents);
        assert!(!in_sents.is_empty());
        // Reconstruction: splicing target spans back at sentinel positions
        // recovers the original sequence.
        let mut rebuilt = Vec::new();
        for &t in input.iter().take(input.len() - 1) {
            if (3..67).contains(&t) {
                let start = target.iter().position(|&x| x == t).unwrap() + 1;
                let mut j = start;
                while j < target.len() && !(3..67).contains(&target[j]) && target[j] != special::EOS
                {
                    rebuilt.push(target[j]);
                    j += 1;
                }
            } else {
                rebuilt.push(t);
            }
        }
        assert_eq!(rebuilt, ids);
    }

    #[test]
    fn span_corrupt_masks_roughly_fifteen_percent() {
        let mut rng = StdRng::seed_from_u64(9);
        let ids: Vec<u32> = (100..1100).collect();
        let (input, _) = span_corrupt(&ids, 0.15, 3, &mut rng);
        let kept = input.iter().filter(|&&t| t >= 100).count();
        let masked = ids.len() - kept;
        let ratio = masked as f64 / ids.len() as f64;
        assert!((0.05..0.3).contains(&ratio), "mask ratio {ratio}");
    }

    #[test]
    fn span_corrupt_always_produces_a_target() {
        let mut rng = StdRng::seed_from_u64(1);
        for len in [2usize, 3, 5] {
            let ids: Vec<u32> = (100..100 + len as u32).collect();
            let (_, target) = span_corrupt(&ids, 0.15, 3, &mut rng);
            assert!(target.len() >= 2, "degenerate target for len {len}");
        }
    }

    #[test]
    fn pretraining_reduces_loss() {
        let (data, tok) = data_and_tok();
        let mut ps = ParamSet::new();
        let mut rng = XorShift::new(8);
        let cfg = T5Config {
            vocab: tok.vocab().len(),
            d_model: 16,
            d_ff: 32,
            heads: 2,
            enc_layers: 1,
            dec_layers: 1,
            dropout: 0.0,
            positional: Positional::RelativeBias,
        };
        let model = T5Model::new(&mut ps, "pt", cfg, &mut rng);
        let c1 = PretrainConfig {
            steps: 4,
            accum: 2,
            peak_lr: 2e-3,
            max_len: 64,
            seed: 1,
            doctor: true,
            sanitizer: SanitizerMode::FirstStep,
            ckpt: None,
        };
        let early = pretrain(&model, &mut ps, &tok, &data, Objective::Hybrid, &c1);
        let c2 = PretrainConfig {
            steps: 40,
            accum: 2,
            peak_lr: 2e-3,
            max_len: 64,
            seed: 1,
            doctor: true,
            sanitizer: SanitizerMode::FirstStep,
            ckpt: None,
        };
        let late = pretrain(&model, &mut ps, &tok, &data, Objective::Hybrid, &c2);
        assert!(late < early, "pretraining diverged: {early} -> {late}");
    }

    #[test]
    fn mlm_only_objective_trains_too() {
        let (data, tok) = data_and_tok();
        let mut ps = ParamSet::new();
        let mut rng = XorShift::new(8);
        let cfg = T5Config {
            vocab: tok.vocab().len(),
            d_model: 16,
            d_ff: 32,
            heads: 2,
            enc_layers: 1,
            dec_layers: 1,
            dropout: 0.0,
            positional: Positional::RelativeBias,
        };
        let model = T5Model::new(&mut ps, "pt", cfg, &mut rng);
        let c = PretrainConfig {
            steps: 3,
            accum: 2,
            peak_lr: 1e-3,
            max_len: 64,
            seed: 2,
            doctor: true,
            sanitizer: SanitizerMode::FirstStep,
            ckpt: None,
        };
        let loss = pretrain(
            &model,
            &mut ps,
            &tok,
            &data.mlm_only(),
            Objective::MlmOnly,
            &c,
        );
        assert!(loss.is_finite() && loss > 0.0);
    }
}
