//! Criterion micro-benchmarks for the substrate hot paths: parsing,
//! standardization, grammar masking, execution, tokenization, metrics,
//! tensor kernels, and a full training step.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use corpus::{Corpus, CorpusConfig};
use datavist5::data::TaskDatasets;
use nn::param::ParamSet;
use nn::t5::{Positional, T5Config, T5Model};
use tensor::{Graph, Tensor, XorShift};
use tokenizer::WordTokenizer;
use vql::grammar::GrammarConstraint;
use vql::schema::{DbSchema, TableSchema};

const QUERY: &str = "visualize bar select player.years_played, count ( player.years_played ) \
                     from player join team on player.team_id = team.id where team.name = \
                     'columbus_crew' group by player.years_played order by \
                     count ( player.years_played ) asc";

fn schema() -> DbSchema {
    DbSchema::new(
        "soccer_1",
        vec![
            TableSchema::new(
                "player",
                vec![
                    "player_id".into(),
                    "name".into(),
                    "team_id".into(),
                    "years_played".into(),
                ],
            ),
            TableSchema::new("team", vec!["id".into(), "name".into()]),
        ],
    )
}

fn bench_vql(c: &mut Criterion) {
    c.bench_function("vql/parse_join_query", |b| {
        b.iter(|| vql::parse_query(black_box(QUERY)).unwrap())
    });
    let q = vql::parse_query(QUERY).unwrap();
    let s = schema();
    c.bench_function("vql/standardize", |b| {
        b.iter(|| vql::standardize(black_box(&q), black_box(&s)))
    });
    c.bench_function("vql/display_roundtrip", |b| b.iter(|| q.to_string()));
    let grammar = GrammarConstraint::new(&s, vec!["'columbus_crew'".into()]);
    let prefix: Vec<&str> = QUERY.split_whitespace().take(12).collect();
    c.bench_function("vql/grammar_allowed_next", |b| {
        b.iter(|| grammar.allowed_next(black_box(&prefix)))
    });
}

fn bench_corpus(c: &mut Criterion) {
    let cfg = CorpusConfig {
        seed: 5,
        dbs_per_domain: 1,
        queries_per_db: 4,
        facts_per_db: 2,
    };
    c.bench_function("corpus/generate_small", |b| {
        b.iter(|| Corpus::generate(black_box(&cfg)))
    });
    let corpus = Corpus::generate(&cfg);
    let e = &corpus.nvbench[0];
    let db = corpus.database(&e.db_name).unwrap();
    let q = vql::parse_query(&e.query).unwrap();
    c.bench_function("storage/execute_query", |b| {
        b.iter(|| storage::execute(black_box(&q), black_box(db)).unwrap())
    });
}

fn bench_metrics(c: &mut Criterion) {
    let pairs: Vec<(String, String)> = (0..32)
        .map(|i| {
            (
                format!("the {i} quick brown fox jumps over the lazy dog"),
                format!("a {i} quick brown fox leaped over one lazy dog"),
            )
        })
        .collect();
    c.bench_function("metrics/bleu4_corpus32", |b| {
        b.iter(|| metrics::bleu(black_box(&pairs), 4))
    });
    c.bench_function("metrics/rouge_l_corpus32", |b| {
        b.iter(|| metrics::rouge_l(black_box(&pairs)))
    });
    c.bench_function("metrics/meteor_corpus32", |b| {
        b.iter(|| metrics::meteor(black_box(&pairs)))
    });
}

fn bench_tokenizer(c: &mut Criterion) {
    let corpus = Corpus::generate(&CorpusConfig {
        seed: 5,
        dbs_per_domain: 1,
        queries_per_db: 4,
        facts_per_db: 2,
    });
    let datasets = TaskDatasets::build(&corpus);
    let tok = WordTokenizer::fit(datasets.all_texts(), 1);
    let text = &datasets.examples[0].input;
    c.bench_function("tokenizer/encode_decode", |b| {
        b.iter(|| {
            let ids = tok.encode(black_box(text));
            tok.decode(&ids)
        })
    });
}

fn bench_tensor(c: &mut Criterion) {
    let mut rng = XorShift::new(3);
    let a = Tensor::randn(vec![64, 64], 1.0, &mut rng);
    let b_t = Tensor::randn(vec![64, 64], 1.0, &mut rng);
    c.bench_function("tensor/matmul_64x64", |b| {
        b.iter(|| {
            let mut g = Graph::new();
            let va = g.leaf(a.clone(), false);
            let vb = g.leaf(b_t.clone(), false);
            g.matmul(va, vb)
        })
    });
}

fn bench_training_step(c: &mut Criterion) {
    let mut ps = ParamSet::new();
    let mut rng = XorShift::new(7);
    let cfg = T5Config {
        vocab: 512,
        d_model: 64,
        d_ff: 128,
        heads: 4,
        enc_layers: 2,
        dec_layers: 2,
        dropout: 0.0,
        positional: Positional::RelativeBias,
    };
    let model = T5Model::new(&mut ps, "bench", cfg, &mut rng);
    let src: Vec<u32> = (10..90).collect();
    let tgt: Vec<u32> = (100..140).collect();
    c.bench_function("nn/t5_fwd_bwd_80src_40tgt", |b| {
        b.iter(|| {
            let mut g = Graph::new();
            let loss = model.loss(&mut g, &ps, black_box(&src), black_box(&tgt), 0.0);
            g.backward(loss);
        })
    });
    c.bench_function("nn/t5_decode_step", |b| {
        let mut state = nn::t5::DecodeState::new(&model, &ps, &src);
        let _ = state.step(0);
        b.iter(|| {
            let mut s2 = state.clone();
            s2.step(black_box(5))
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_vql, bench_corpus, bench_metrics, bench_tokenizer, bench_tensor, bench_training_step
);
criterion_main!(benches);
