//! The perf-trajectory harness: one canonical throughput-series schema
//! shared by every bench bin, an append-only history, trend rendering,
//! and the CI regression gate.
//!
//! Before this module, every `BENCH_*.json` was an ad-hoc blob: six
//! shapes, no shared header, no history, no comparison — a 6.8× decode
//! collapse at 4 threads sat in `BENCH_decode.json` and nothing flagged
//! it. The harness fixes that with four pieces:
//!
//! 1. **Schema** ([`PerfSample`], [`RunHeader`], [`PerfBlock`]): every
//!    bench bin attaches a `"perf"` block to its JSON report — a shared
//!    run header (bench name, preset, git rev, hardware threads) plus a
//!    flat list of samples. Series names are slash-separated paths from
//!    most-general to most-specific (the multiplot idiom):
//!    `decode/batched/tokens_per_sec`, `kernel/mm_nt/fwd/flops_per_sec`,
//!    `serve/cache/reuse90/qps`, `train/step_ms`. The unit names the
//!    quantity *and* fixes the default gate direction (throughput up,
//!    latency down).
//! 2. **History** ([`history`]): `bench/history.jsonl`, append-only, one
//!    line per series per blessed run, ordered by a monotonic run `seq`
//!    (never wall-clock — ordering is deterministic and merge-friendly).
//!    The loader tolerates unknown series and unknown fields so old
//!    readers survive new writers.
//! 3. **Trends** ([`trend`]): a dependency-free renderer that emits
//!    stacked per-family SVG charts plus an aligned text table to the
//!    bench scratch dir.
//! 4. **Gate** ([`gate`] + the `perf_gate` bin): compares the current
//!    `BENCH_*.json` perf blocks against the latest history run with
//!    per-series tolerance bands (`bench/perf_gates.toml`), emitting
//!    typed codes T001–T004 (family `perf` in `analysis::registry`) and
//!    exiting nonzero on any unsuppressed finding.

pub mod gate;
pub mod history;
pub mod trend;

use obs::KernelEntry;

/// Schema version stamped into every perf block; bump on incompatible
/// changes so old history readers can skip what they don't understand.
pub const SCHEMA_VERSION: u64 = 1;

/// The measurement unit of a series. The unit is part of the schema: it
/// fixes how the gate compares values ([`Direction`]) and how trends are
/// labelled. A series may not change unit between runs (T003).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Unit {
    /// Decoded tokens per wall-clock second (higher is better).
    TokensPerSec,
    /// Completed requests per wall-clock second (higher is better).
    Qps,
    /// Floating-point operations per second (higher is better).
    FlopsPerSec,
    /// Bytes moved per second (higher is better).
    BytesPerSec,
    /// Milliseconds of wall time (lower is better).
    Ms,
    /// A dimensionless 0-ish..1-ish ratio (higher is better by default;
    /// override `dir` in `perf_gates.toml` for lower-is-better ratios
    /// like `obs/overhead_ratio`).
    Ratio,
    /// A structural count (files audited, findings allowed). Counts are
    /// informational: tracked and charted, never value-gated — but their
    /// *presence* is still gated (a vanished series is T002).
    Count,
}

impl Unit {
    pub fn as_str(&self) -> &'static str {
        match self {
            Unit::TokensPerSec => "tokens_per_sec",
            Unit::Qps => "qps",
            Unit::FlopsPerSec => "flops_per_sec",
            Unit::BytesPerSec => "bytes_per_sec",
            Unit::Ms => "ms",
            Unit::Ratio => "ratio",
            Unit::Count => "count",
        }
    }

    pub fn parse(s: &str) -> Option<Unit> {
        Some(match s {
            "tokens_per_sec" => Unit::TokensPerSec,
            "qps" => Unit::Qps,
            "flops_per_sec" => Unit::FlopsPerSec,
            "bytes_per_sec" => Unit::BytesPerSec,
            "ms" => Unit::Ms,
            "ratio" => Unit::Ratio,
            "count" => Unit::Count,
            _ => return None,
        })
    }

    /// The default gate direction this unit implies.
    pub fn direction(&self) -> Direction {
        match self {
            Unit::TokensPerSec | Unit::Qps | Unit::FlopsPerSec | Unit::BytesPerSec => {
                Direction::Higher
            }
            Unit::Ms => Direction::Lower,
            Unit::Ratio => Direction::Higher,
            Unit::Count => Direction::Info,
        }
    }
}

/// Which way a series is supposed to move: the gate flags movement
/// *against* this direction beyond the tolerance band.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Bigger is better (throughput): T001 when current falls below
    /// `baseline * (1 - tol)`.
    Higher,
    /// Smaller is better (latency): T001 when current rises above
    /// `baseline * (1 + tol)`.
    Lower,
    /// Tracked but never value-gated.
    Info,
}

impl Direction {
    pub fn as_str(&self) -> &'static str {
        match self {
            Direction::Higher => "up",
            Direction::Lower => "down",
            Direction::Info => "info",
        }
    }

    pub fn parse(s: &str) -> Option<Direction> {
        Some(match s {
            "up" => Direction::Higher,
            "down" => Direction::Lower,
            "info" => Direction::Info,
            _ => return None,
        })
    }
}

/// One measured point: a slash-separated series name, its unit, and a
/// finite value.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfSample {
    pub series: String,
    pub unit: Unit,
    pub value: f64,
}

/// Shorthand constructor used by the bench bins.
pub fn sample(series: &str, unit: Unit, value: f64) -> PerfSample {
    PerfSample {
        series: series.to_string(),
        unit,
        value,
    }
}

/// Validates a series name: one or more `/`-separated segments, each
/// nonempty and drawn from `[A-Za-z0-9._-]` (the kernel worker labels
/// like `mm_nn.par.t0` motivate the dot). Anything else is a schema
/// violation (T003).
pub fn validate_series(name: &str) -> Result<(), String> {
    if name.is_empty() {
        return Err("series name is empty".to_string());
    }
    for segment in name.split('/') {
        if segment.is_empty() {
            return Err(format!(
                "series '{name}' has an empty segment (leading, trailing, or doubled '/')"
            ));
        }
        if let Some(bad) = segment
            .chars()
            .find(|c| !(c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-')))
        {
            return Err(format!(
                "series '{name}' contains {bad:?}; segments are [A-Za-z0-9._-]+"
            ));
        }
    }
    Ok(())
}

/// Validates a full sample: series name plus a finite value.
pub fn validate_sample(s: &PerfSample) -> Result<(), String> {
    validate_series(&s.series)?;
    if !s.value.is_finite() {
        return Err(format!(
            "series '{}' has non-finite value {}",
            s.series, s.value
        ));
    }
    Ok(())
}

/// The shared run header every bench bin stamps on its perf block, so a
/// history line can always answer "measured where, at what revision".
#[derive(Debug, Clone, PartialEq)]
pub struct RunHeader {
    /// The emitting bench bin (`decode`, `serve`, `det_audit`, ...).
    pub bench: String,
    /// Model preset, where the bin has one (`base`/`large`).
    pub preset: Option<String>,
    /// Short git revision the workspace was at, or `"unknown"` outside a
    /// git checkout. Reported only — never feeds computation.
    pub git_rev: String,
    /// `std::thread::available_parallelism()` on the measuring host.
    pub hardware_threads: u64,
}

/// Builds the shared header for a bench bin.
pub fn run_header(bench: &str, preset: Option<&str>) -> RunHeader {
    RunHeader {
        bench: bench.to_string(),
        preset: preset.map(str::to_string),
        git_rev: git_rev(),
        hardware_threads: std::thread::available_parallelism()
            .map(|n| n.get() as u64)
            .unwrap_or(1),
    }
}

/// The workspace's short git revision, or `"unknown"`.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .current_dir(crate::workspace_root())
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// A complete perf block: header plus samples. This is what lands under
/// the `"perf"` key of each `BENCH_*.json` and what `perf_gate` reads
/// back.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfBlock {
    pub header: RunHeader,
    pub samples: Vec<PerfSample>,
}

impl PerfBlock {
    /// Builds a block, panicking on invalid or duplicate series — bench
    /// bins fail loudly at emit time so a schema violation can never
    /// reach a committed report.
    pub fn new(header: RunHeader, samples: Vec<PerfSample>) -> PerfBlock {
        let mut seen: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
        for s in &samples {
            if let Err(e) = validate_sample(s) {
                panic!("perf block for bench '{}': {e}", header.bench);
            }
            assert!(
                seen.insert(&s.series),
                "perf block for bench '{}' emits series '{}' twice",
                header.bench,
                s.series
            );
        }
        PerfBlock { header, samples }
    }

    /// Serializes the block for inclusion in a bench bin's JSON report:
    /// `"perf": block.to_json()` inside the top-level `json!`.
    pub fn to_json(&self) -> serde_json::Value {
        let samples: Vec<serde_json::Value> = self
            .samples
            .iter()
            .map(|s| {
                serde_json::json!({
                    "series": s.series.clone(),
                    "unit": s.unit.as_str(),
                    "value": s.value,
                })
            })
            .collect();
        serde_json::json!({
            "schema": SCHEMA_VERSION as i64,
            "bench": self.header.bench.clone(),
            "preset": self.header.preset.clone(),
            "git_rev": self.header.git_rev.clone(),
            "hardware_threads": self.header.hardware_threads as i64,
            "samples": samples,
        })
    }
}

/// Parses a perf block back out of a `BENCH_*.json` document (the value
/// under its `"perf"` key), leniently: malformed samples are collected
/// as violation messages (the gate turns them into T003 findings) while
/// well-formed samples are kept.
pub fn parse_block(v: &obs::json::Value) -> Result<(PerfBlock, Vec<String>), String> {
    let bench = v
        .get("bench")
        .and_then(obs::json::Value::as_str)
        .ok_or("perf block is missing 'bench'")?
        .to_string();
    let preset = v
        .get("preset")
        .and_then(obs::json::Value::as_str)
        .map(str::to_string);
    let git_rev = v
        .get("git_rev")
        .and_then(obs::json::Value::as_str)
        .unwrap_or("unknown")
        .to_string();
    let hardware_threads = v
        .get("hardware_threads")
        .and_then(obs::json::Value::as_u64)
        .unwrap_or(1);
    let mut samples = Vec::new();
    let mut violations = Vec::new();
    let raw = v
        .get("samples")
        .and_then(obs::json::Value::as_arr)
        .ok_or_else(|| format!("perf block for '{bench}' is missing 'samples'"))?;
    for (i, entry) in raw.iter().enumerate() {
        let series = match entry.get("series").and_then(obs::json::Value::as_str) {
            Some(s) => s.to_string(),
            None => {
                violations.push(format!("bench '{bench}' sample #{i} has no 'series'"));
                continue;
            }
        };
        let unit_str = entry
            .get("unit")
            .and_then(obs::json::Value::as_str)
            .unwrap_or("");
        let Some(unit) = Unit::parse(unit_str) else {
            violations.push(format!(
                "bench '{bench}' series '{series}' has unknown unit '{unit_str}'"
            ));
            continue;
        };
        let Some(value) = entry.get("value").and_then(obs::json::Value::as_f64) else {
            violations.push(format!(
                "bench '{bench}' series '{series}' has a non-numeric value"
            ));
            continue;
        };
        let s = PerfSample {
            series,
            unit,
            value,
        };
        match validate_sample(&s) {
            Ok(()) => samples.push(s),
            Err(e) => violations.push(format!("bench '{bench}': {e}")),
        }
    }
    let header = RunHeader {
        bench,
        preset,
        git_rev,
        hardware_threads,
    };
    Ok((PerfBlock { header, samples }, violations))
}

/// Derives per-OpKind throughput series from obs kernel-profiler rows:
/// `kernel/<op>/<phase>/flops_per_sec` for every op that reported FLOPs,
/// plus `kernel/<op>/<phase>/bytes_per_sec` where byte estimates exist.
/// Zero new instrumentation — this is a pure re-aggregation of what the
/// profiler already attributes (PR 5), which is how kernel-level
/// throughput gets tracked per phase for free.
pub fn kernel_series(entries: &[&KernelEntry]) -> Vec<PerfSample> {
    use std::collections::BTreeMap;
    let mut totals: BTreeMap<(String, obs::Phase), obs::KernelStat> = BTreeMap::new();
    for e in entries {
        let slot = totals.entry((e.op.clone(), e.phase)).or_default();
        slot.calls += e.stat.calls;
        slot.ns += e.stat.ns;
        slot.bytes += e.stat.bytes;
        slot.flops += e.stat.flops;
    }
    let mut out = Vec::new();
    for ((op, phase), stat) in &totals {
        if stat.ns == 0 {
            continue;
        }
        let secs = stat.ns as f64 / 1e9;
        if stat.flops > 0 {
            out.push(sample(
                &format!("kernel/{op}/{}/flops_per_sec", phase.as_str()),
                Unit::FlopsPerSec,
                stat.flops as f64 / secs,
            ));
        }
        if stat.bytes > 0 {
            out.push(sample(
                &format!("kernel/{op}/{}/bytes_per_sec", phase.as_str()),
                Unit::BytesPerSec,
                stat.bytes as f64 / secs,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_validation_accepts_the_conventions() {
        for ok in [
            "decode/batched/tokens_per_sec",
            "kernel/mm_nn.par.t0/bwd/flops_per_sec",
            "train/step_ms",
            "audit/det/files",
            "obs/overhead_ratio",
        ] {
            assert!(validate_series(ok).is_ok(), "{ok} should validate");
        }
    }

    #[test]
    fn series_validation_rejects_malformed_names() {
        for bad in [
            "",
            "/lead",
            "trail/",
            "a//b",
            "sp ace/x",
            "uni\u{1f4be}/x",
            "a/b\"c",
        ] {
            assert!(validate_series(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn sample_validation_rejects_non_finite_values() {
        assert!(validate_sample(&sample("a/b", Unit::Ms, f64::NAN)).is_err());
        assert!(validate_sample(&sample("a/b", Unit::Ms, f64::INFINITY)).is_err());
        assert!(validate_sample(&sample("a/b", Unit::Ms, 1.5)).is_ok());
    }

    #[test]
    #[should_panic(expected = "twice")]
    fn block_rejects_duplicate_series() {
        let header = RunHeader {
            bench: "t".into(),
            preset: None,
            git_rev: "abc".into(),
            hardware_threads: 1,
        };
        PerfBlock::new(
            header,
            vec![sample("a/b", Unit::Ms, 1.0), sample("a/b", Unit::Ms, 2.0)],
        );
    }

    #[test]
    fn block_round_trips_through_json() {
        let header = RunHeader {
            bench: "decode".into(),
            preset: Some("base".into()),
            git_rev: "abc1234".into(),
            hardware_threads: 8,
        };
        let block = PerfBlock::new(
            header,
            vec![
                sample(
                    "decode/batched/tokens_per_sec",
                    Unit::TokensPerSec,
                    16485.985206017824,
                ),
                sample("decode/batched/speedup", Unit::Ratio, 3.214974220362626),
            ],
        );
        let text = serde_json::to_string(&block.to_json()).unwrap();
        let parsed = obs::json::parse(&text).unwrap();
        let (back, violations) = parse_block(&parsed).unwrap();
        assert!(violations.is_empty(), "{violations:?}");
        assert_eq!(back, block);
    }

    #[test]
    fn parse_block_is_lenient_about_bad_samples() {
        let text = r#"{
            "schema": 1, "bench": "x", "preset": null, "git_rev": "r",
            "hardware_threads": 2,
            "samples": [
                {"series": "ok/one", "unit": "ms", "value": 2.5},
                {"series": "bad unit", "unit": "furlongs", "value": 1.0},
                {"unit": "ms", "value": 1.0},
                {"series": "bad//name", "unit": "ms", "value": 1.0},
                {"series": "bad/value", "unit": "ms", "value": "nope"}
            ]
        }"#;
        let parsed = obs::json::parse(text).unwrap();
        let (block, violations) = parse_block(&parsed).unwrap();
        assert_eq!(block.samples.len(), 1);
        assert_eq!(block.samples[0].series, "ok/one");
        assert_eq!(violations.len(), 4);
    }

    #[test]
    fn unit_directions_and_round_trip() {
        for unit in [
            Unit::TokensPerSec,
            Unit::Qps,
            Unit::FlopsPerSec,
            Unit::BytesPerSec,
            Unit::Ms,
            Unit::Ratio,
            Unit::Count,
        ] {
            assert_eq!(Unit::parse(unit.as_str()), Some(unit));
        }
        assert_eq!(Unit::Ms.direction(), Direction::Lower);
        assert_eq!(Unit::Qps.direction(), Direction::Higher);
        assert_eq!(Unit::Count.direction(), Direction::Info);
        assert_eq!(Unit::parse("parsecs"), None);
    }

    #[test]
    fn kernel_series_aggregates_across_spans() {
        use obs::{KernelEntry, KernelStat, Phase};
        let a = KernelEntry {
            span: "s1".into(),
            op: "mm_nn".into(),
            phase: Phase::Forward,
            stat: KernelStat {
                calls: 2,
                ns: 1_000_000,
                bytes: 0,
                flops: 4_000_000,
            },
        };
        let b = KernelEntry {
            span: "s2".into(),
            op: "mm_nn".into(),
            phase: Phase::Forward,
            stat: KernelStat {
                calls: 1,
                ns: 1_000_000,
                bytes: 2_000_000,
                flops: 4_000_000,
            },
        };
        let series = kernel_series(&[&a, &b]);
        let flops = series
            .iter()
            .find(|s| s.series == "kernel/mm_nn/fwd/flops_per_sec")
            .expect("flops series");
        // 8 MFLOP over 2 ms = 4 GFLOP/s.
        assert!((flops.value - 4e9).abs() < 1e-3);
        let bytes = series
            .iter()
            .find(|s| s.series == "kernel/mm_nn/fwd/bytes_per_sec")
            .expect("bytes series");
        assert!((bytes.value - 1e9).abs() < 1e-3);
    }
}
