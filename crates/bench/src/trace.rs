//! Seeded workload traces shared by the bench binaries.
//!
//! `decode_bench` and `serve_bench` draw from the *same* generators, so
//! a seed names one workload across both: the ragged-source generator
//! here is the one `decode_bench` has always used (same RNG stream),
//! and the bursty arrival-offset generator gives `serve_bench` its
//! open-loop load shape. The serve trace builder combines the two into
//! `(arrival_ns, ServeRequest)` pairs — the deterministic input the
//! double-run contract and the golden admission log are defined over.

use corpus::Corpus;
use datavist5::data::{Task, TaskRequest};
use serve::ServeRequest;
use tensor::XorShift;

/// Ragged random token sources drawn from an existing RNG stream
/// (lengths in `min_len..=max_len`, ids in `0..vocab`). `decode_bench`
/// passes its model-init RNG here to keep its historical stream.
pub fn ragged_sources_with(
    rng: &mut XorShift,
    n: usize,
    vocab: usize,
    min_len: usize,
    max_len: usize,
) -> Vec<Vec<u32>> {
    assert!(min_len >= 1 && max_len >= min_len, "bad length range");
    let span = (max_len - min_len + 1) as u64;
    (0..n)
        .map(|_| {
            let len = min_len + (rng.next_u64() % span) as usize;
            (0..len)
                .map(|_| (rng.next_u64() % vocab as u64) as u32)
                .collect()
        })
        .collect()
}

/// [`ragged_sources_with`] from a fresh seed.
pub fn ragged_sources(
    seed: u64,
    n: usize,
    vocab: usize,
    min_len: usize,
    max_len: usize,
) -> Vec<Vec<u32>> {
    let mut rng = XorShift::new(seed);
    ragged_sources_with(&mut rng, n, vocab, min_len, max_len)
}

/// Bursty arrival offsets: requests land in bursts of `burst` every
/// `gap_ns`, each jittered by `0..jitter_ns`. Sorted ascending — the
/// trace-replay contract requires nondecreasing arrivals.
pub fn bursty_offsets(seed: u64, n: usize, burst: usize, gap_ns: u64, jitter_ns: u64) -> Vec<u64> {
    assert!(burst >= 1, "burst size must be at least 1");
    let mut rng = XorShift::new(seed ^ 0xb065);
    let mut out: Vec<u64> = (0..n)
        .map(|i| {
            let base = (i / burst) as u64 * gap_ns;
            let jitter = if jitter_ns == 0 {
                0
            } else {
                rng.next_u64() % jitter_ns
            };
            base + jitter
        })
        .collect();
    out.sort_unstable();
    out
}

/// Everything that names one serving workload.
#[derive(Debug, Clone, Copy)]
pub struct TraceSpec {
    pub seed: u64,
    pub requests: usize,
    /// Token ids are drawn from `0..vocab` (callers reserving special
    /// ids shift the range themselves via `min_token`).
    pub vocab: usize,
    /// Lowest token id to emit (skips PAD/EOS/UNK when serving a real
    /// tokenizer's id space).
    pub min_token: u32,
    pub min_len: usize,
    pub max_len: usize,
    pub burst: usize,
    pub gap_ns: u64,
    pub jitter_ns: u64,
    /// Every `deadline_every`-th request gets a deadline (0 disables).
    pub deadline_every: usize,
    /// Deadline slack added to the arrival time.
    pub deadline_slack_ns: u64,
    /// Schema-skew knob: each request past the first task cycle is,
    /// with this percent probability, replaced by a byte-identical copy
    /// of an earlier same-task request's source — the workload shape
    /// the prefix cache exists for. `0` leaves the historical trace
    /// untouched (the reuse decisions draw from their own RNG stream,
    /// so enabling reuse never shifts the base source stream).
    pub reuse_pct: u8,
}

impl TraceSpec {
    /// The serve-bench smoke default: bursts of 4 every 3 ms.
    pub fn smoke(seed: u64, requests: usize, vocab: usize) -> TraceSpec {
        TraceSpec {
            seed,
            requests,
            vocab,
            min_token: 3,
            min_len: 3,
            max_len: 10,
            burst: 4,
            gap_ns: 3_000_000,
            jitter_ns: 500_000,
            deadline_every: 5,
            deadline_slack_ns: 40_000_000,
            reuse_pct: 0,
        }
    }

    /// Sets the schema-reuse probability (builder style).
    pub fn with_reuse(mut self, reuse_pct: u8) -> TraceSpec {
        assert!(reuse_pct <= 100, "reuse_pct is a percentage");
        self.reuse_pct = reuse_pct;
        self
    }
}

/// The XOR mixed into a spec's seed for the reuse-overlay RNG: a
/// *separate* stream from the base sources, so `reuse_pct == 0` traces
/// are bit-identical to traces generated before the knob existed.
const REUSE_STREAM: u64 = 0x5eed_0cac_4e5e_ed00;

/// Overlays schema reuse on a list of per-request payloads: each index
/// `i >= 4` is, with probability `reuse_pct`%, replaced by a clone of a
/// uniformly chosen earlier index with the same task slot (`j ≡ i mod
/// 4`), keeping task labels aligned with their sources. Deterministic
/// in `(seed, reuse_pct, len)`.
fn overlay_reuse<T: Clone>(items: &mut [T], reuse_pct: u8, seed: u64) {
    assert!(reuse_pct <= 100, "reuse_pct is a percentage");
    if reuse_pct == 0 {
        return;
    }
    let mut rng = XorShift::new(seed ^ REUSE_STREAM);
    for i in 4..items.len() {
        if rng.next_u64() % 100 < reuse_pct as u64 {
            let earlier_cycles = (i / 4) as u64;
            let j = (i % 4) + 4 * (rng.next_u64() % earlier_cycles) as usize;
            items[i] = items[j].clone();
        }
    }
}

/// Builds the full `(arrival_ns, request)` trace for a spec: bursty
/// arrivals, ragged sources, round-robin task labels, periodic
/// deadlines. Pure function of the spec — two calls yield identical
/// traces, which is what makes the double-run comparison meaningful.
pub fn serve_trace(spec: &TraceSpec) -> Vec<(u64, ServeRequest)> {
    assert!(
        (spec.min_token as usize) < spec.vocab,
        "min_token outside vocab"
    );
    let offsets = bursty_offsets(
        spec.seed,
        spec.requests,
        spec.burst,
        spec.gap_ns,
        spec.jitter_ns,
    );
    let span = spec.vocab as u64 - spec.min_token as u64;
    let mut rng = XorShift::new(spec.seed);
    let mut raw = ragged_sources_with(
        &mut rng,
        spec.requests,
        span as usize,
        spec.min_len,
        spec.max_len,
    );
    overlay_reuse(&mut raw, spec.reuse_pct, spec.seed);
    offsets
        .into_iter()
        .zip(raw)
        .enumerate()
        .map(|(i, (arrival, src))| {
            let src: Vec<u32> = src.into_iter().map(|t| t + spec.min_token).collect();
            let mut req = ServeRequest::new(i as u64, Task::ALL[i % 4], src);
            if spec.deadline_every > 0 && i % spec.deadline_every == spec.deadline_every - 1 {
                req = req.with_deadline(arrival + spec.deadline_slack_ns);
            }
            (arrival, req)
        })
        .collect()
}

/// [`corpus_requests`] with the schema-reuse overlay applied: with
/// probability `reuse_pct`% a request (past the first task cycle)
/// repeats an earlier same-task request verbatim — standardized input
/// and all — which is what gives the prefix cache something to hit.
/// The base request cycle never repeats a standardized input within
/// realistic trace lengths (each cycle advances to the next corpus
/// entry), so without this overlay hit-rate benchmarks measure nothing.
pub fn corpus_requests_with_reuse(
    corpus: &Corpus,
    n: usize,
    reuse_pct: u8,
    seed: u64,
) -> Vec<TaskRequest> {
    let mut reqs = corpus_requests(corpus, n);
    overlay_reuse(&mut reqs, reuse_pct, seed);
    reqs
}

/// Text-level requests cycling the four tasks over a generated corpus:
/// text-to-vis and vis-to-text from NvBench pairs, FeVisQA from its QA
/// examples, table-to-text from chart2text tables. Used by serve_bench
/// to exercise the full text → filtration → tokens path.
pub fn corpus_requests(corpus: &Corpus, n: usize) -> Vec<TaskRequest> {
    let schema_of = |db_name: &str| {
        corpus
            .database(db_name)
            .unwrap_or_else(|| panic!("corpus names unknown database {db_name}"))
            .schema()
    };
    assert!(
        !corpus.nvbench.is_empty() && !corpus.fevisqa.is_empty() && !corpus.chart2text.is_empty(),
        "corpus too small for a serving workload"
    );
    (0..n)
        .map(|i| match i % 4 {
            0 => {
                let e = &corpus.nvbench[(i / 4) % corpus.nvbench.len()];
                TaskRequest::TextToVis {
                    question: e.question.clone(),
                    schema: schema_of(&e.db_name),
                }
            }
            1 => {
                let e = &corpus.nvbench[(i / 4) % corpus.nvbench.len()];
                TaskRequest::VisToText {
                    query: e.query.clone(),
                    schema: schema_of(&e.db_name),
                }
            }
            2 => {
                let e = &corpus.fevisqa[(i / 4) % corpus.fevisqa.len()];
                TaskRequest::FeVisQa {
                    question: e.question.clone(),
                    query: e.query.clone(),
                    schema: schema_of(&e.db_name),
                    table: e.table.clone(),
                }
            }
            _ => {
                let e = &corpus.chart2text[(i / 4) % corpus.chart2text.len()];
                TaskRequest::TableToText {
                    table: e.table.clone(),
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ragged_sources_respect_bounds_and_are_seeded() {
        let a = ragged_sources(9, 20, 64, 2, 7);
        let b = ragged_sources(9, 20, 64, 2, 7);
        assert_eq!(a, b);
        for src in &a {
            assert!((2..=7).contains(&src.len()));
            assert!(src.iter().all(|&t| (t as usize) < 64));
        }
        assert_ne!(a, ragged_sources(10, 20, 64, 2, 7));
    }

    #[test]
    fn bursty_offsets_are_sorted_and_bursty() {
        let offs = bursty_offsets(3, 12, 4, 1_000_000, 10_000);
        assert!(offs.windows(2).all(|w| w[0] <= w[1]));
        // Three bursts of four: gaps inside a burst stay under the
        // jitter bound, gaps across bursts approach gap_ns.
        assert!(offs[3] < 10_000 + 1);
        assert!(offs[4] >= 1_000_000);
    }

    #[test]
    fn serve_trace_is_a_pure_function_of_its_spec() {
        let spec = TraceSpec::smoke(0xabc, 16, 128);
        let a = serve_trace(&spec);
        let b = serve_trace(&spec);
        assert_eq!(a.len(), 16);
        for ((ta, ra), (tb, rb)) in a.iter().zip(b.iter()) {
            assert_eq!(ta, tb);
            assert_eq!(ra, rb);
        }
        // Round-robin tasks and periodic deadlines.
        assert_eq!(a[0].1.task, Task::TextToVis);
        assert_eq!(a[1].1.task, Task::VisToText);
        assert_eq!(
            a.iter()
                .filter(|(_, r)| r.deadline_ns != serve::NO_DEADLINE)
                .count(),
            3
        );
        assert!(a.iter().all(|(_, r)| r.src.iter().all(|&t| t >= 3)));
    }

    #[test]
    fn reuse_zero_preserves_the_historical_rng_stream() {
        // Pinned values captured before the reuse knob existed: a
        // `reuse_pct == 0` trace must reproduce the pre-knob stream
        // exactly (golden_serve.rs depends on it), and `with_reuse(0)`
        // must be a no-op.
        let spec = TraceSpec::smoke(0x90de, 16, 128);
        let t = serve_trace(&spec);
        assert_eq!(t[0].1.src, [126, 113, 6, 59, 30]);
        assert_eq!(t[15].1.src, [30, 55, 24]);
        assert_eq!(t[0].0, 164_050);
        let combined = t
            .iter()
            .map(|(a, r)| a ^ nn::prefix_hash(&r.src))
            .fold(0u64, |acc, x| acc.wrapping_mul(31).wrapping_add(x));
        assert_eq!(combined, 0xc692_8ad8_6b51_6428);
        let explicit_zero = serve_trace(&spec.with_reuse(0));
        assert_eq!(t, explicit_zero);
    }

    #[test]
    fn reuse_overlay_repeats_earlier_same_task_sources() {
        let base = serve_trace(&TraceSpec::smoke(0x90de, 40, 128));
        let spec = TraceSpec::smoke(0x90de, 40, 128).with_reuse(90);
        let skewed = serve_trace(&spec);
        assert_eq!(serve_trace(&spec), skewed, "overlay is deterministic");
        let mut reused = 0;
        for (i, (arrival, req)) in skewed.iter().enumerate() {
            // Reuse never touches arrivals, tasks, ids, or deadlines.
            assert_eq!(*arrival, base[i].0);
            assert_eq!(req.task, base[i].1.task);
            assert_eq!(req.deadline_ns, base[i].1.deadline_ns);
            if req.src != base[i].1.src {
                reused += 1;
                assert!(i >= 4, "first task cycle is never rewritten");
                // The replacement is an earlier same-task source.
                assert!(
                    skewed[..i]
                        .iter()
                        .enumerate()
                        .any(|(j, (_, r))| j % 4 == i % 4 && r.src == req.src),
                    "request {i} reuses no earlier same-task source"
                );
            }
        }
        assert!(reused > 10, "90% reuse must actually repeat sources");
    }

    #[test]
    fn corpus_reuse_repeats_earlier_same_task_requests() {
        let corpus = Corpus::generate(&corpus::CorpusConfig {
            seed: 5,
            dbs_per_domain: 1,
            queries_per_db: 4,
            facts_per_db: 3,
        });
        let base = corpus_requests(&corpus, 32);
        assert_eq!(
            corpus_requests_with_reuse(&corpus, 32, 0, 7),
            base,
            "reuse 0 is the identity"
        );
        let skewed = corpus_requests_with_reuse(&corpus, 32, 90, 7);
        assert_eq!(
            corpus_requests_with_reuse(&corpus, 32, 90, 7),
            skewed,
            "overlay is deterministic"
        );
        let mut reused = 0;
        for (i, req) in skewed.iter().enumerate() {
            assert_eq!(req.task(), base[i].task(), "task cycle preserved");
            if *req != base[i] {
                reused += 1;
                assert!(
                    skewed[..i]
                        .iter()
                        .enumerate()
                        .any(|(j, r)| j % 4 == i % 4 && r == req),
                    "request {i} reuses no earlier same-task request"
                );
            }
        }
        assert!(reused > 5, "90% reuse must actually repeat requests");
    }
}
