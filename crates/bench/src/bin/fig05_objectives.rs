//! Figure 5: the hybrid pre-training objectives — dumps one mini-batch of
//! Bidirectional Dual-Corpus pairs (both directions) and one span-corrupted
//! MLM example per modality, as the figure illustrates.

use bench::{emit, experiment_scale, Report};
use datavist5::data::{Task, TaskDatasets};
use datavist5::pretrain::{span_corrupt, PretrainData};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = experiment_scale();
    let corpus = corpus::Corpus::generate(&scale.corpus_config());
    let datasets = TaskDatasets::build(&corpus);
    let tok = tokenizer::WordTokenizer::fit(datasets.all_texts(), 1);
    let data = PretrainData::build(&datasets);

    let mut r = Report::new("Figure 5 — hybrid pre-training objectives");
    r.line(format!(
        "pre-training corpus: {} BDC pairs, {} MLM segments, vocab {}",
        data.bdc.len(),
        data.mlm.len(),
        tok.vocab().len()
    ));
    r.line("");

    r.line("Bidirectional Dual-Corpus objectives (solid lines in the figure):");
    for task in Task::ALL {
        if let Some(e) = datasets
            .examples
            .iter()
            .find(|e| e.task == task && e.split == corpus::Split::Train)
        {
            r.line(format!(
                "  [{}] forward:  {} -> {}",
                task.label(),
                clip(&e.input),
                clip(&e.output)
            ));
            r.line(format!(
                "  [{}] backward: {} -> {}",
                task.label(),
                clip(&e.output),
                clip(&e.input)
            ));
        }
    }
    r.line("");

    r.line("T5-based MLM objectives (dashed lines): span corruption at 15%, mean span 3:");
    let mut rng = StdRng::seed_from_u64(5);
    for text in data.mlm.iter().take(2) {
        let ids = tok.encode(text);
        let (corrupted, target) = span_corrupt(&ids, 0.15, 3, &mut rng);
        r.line(format!("  original:  {}", clip(text)));
        r.line(format!("  corrupted: {}", clip(&tok.decode(&corrupted))));
        r.line(format!("  target:    {}", clip(&tok.decode(&target))));
        r.line("");
    }
    r.line("Hybrid loss: L_H = L_BDC + L_MLM (Eq. 3), mixed per mini-batch at p = 0.5.");
    emit("fig05_objectives", &r.render());
}

fn clip(s: &str) -> String {
    const MAX: usize = 110;
    if s.len() > MAX {
        format!("{}…", &s[..MAX])
    } else {
        s.to_string()
    }
}
