//! Determinism auditor CLI: the workspace-wide nondeterminism gate.
//!
//! Two layers, mirroring `analysis::det` and `analysis::order`:
//!
//! 1. **Source sweep** — lints every `crates/*/src/**/*.rs` file for
//!    hash-ordered iteration reaching order-sensitive sinks (D001/D005),
//!    ambient randomness (D002), wall-clock reads outside bench code
//!    (D003), and env reads outside the `DATAVIST5_*` surface (D004).
//!    `// det-ok: <reason>` annotations allowlist audited sites; a
//!    reason-less annotation is itself a finding (D000).
//! 2. **Tape audit** — records train tapes for the base/large presets
//!    (the `graph_doctor` probes), recomputes every recomputable
//!    reduction in its canonical order and bit-compares (D010), then runs
//!    backward twice and bit-compares all gradients (D011).
//!
//! Writes `BENCH_det_audit.json` at the repo root and exits nonzero on
//! any unsuppressed finding — `ci.sh` runs this as a gate.
//!
//! ```text
//! cargo run --release -p bench --bin det_audit [-- --out PATH]
//! ```

use analysis::det::{audit_sources, DetCounts};
use analysis::order;
use bench::workspace_root;
use datavist5::config::{Scale, Size};
use nn::param::ParamSet;
use nn::t5::T5Model;
use tensor::{Graph, XorShift};

fn main() {
    let out_path = bench::parse_out_arg("det_audit");

    let root = workspace_root();
    let audit = audit_sources(&root).expect("walk workspace sources");
    let mut counts: DetCounts = audit.counts;

    println!("== determinism audit: source sweep ==");
    for finding in &audit.findings {
        println!("{finding}");
    }
    for finding in &audit.allowed {
        println!("{finding}");
    }
    if audit.findings.is_empty() {
        println!(
            "source sweep clean: {} files, {} det-ok allowlisted",
            counts.files, counts.suppressed
        );
    }

    // Tape audit over the graph_doctor probe tapes.
    println!("\n== determinism audit: tape reduction orders ==");
    let scale = Scale::from_env();
    let vocab = 64usize;
    let src: Vec<u32> = (5u32..21).collect();
    let tgt: Vec<u32> = (7u32..19).chain([1]).collect();
    let mut tape_findings: Vec<(String, String)> = Vec::new();
    for (size, preset) in [(Size::Base, "base"), (Size::Large, "large")] {
        let cfg = scale.t5_config(size, vocab);
        let mut ps = ParamSet::new();
        let mut rng = XorShift::new(0xde7 + preset.len() as u64);
        let model = T5Model::new(&mut ps, preset, cfg, &mut rng);
        let mut g = Graph::with_seed(1);
        let loss = model.loss(&mut g, &ps, &src, &tgt, 0.1);
        let diagnostics = order::check(&mut g, loss);
        println!(
            "preset {preset}: {} ops audited, {} finding(s)",
            g.len(),
            diagnostics.len()
        );
        for d in &diagnostics {
            println!("{d}");
            counts.record_tape(d.code);
            tape_findings.push((
                d.code.to_string(),
                format!("preset {preset}: {}", d.message),
            ));
        }
    }
    if tape_findings.is_empty() {
        println!("tape audit clean: every reduction matches its canonical order twice over");
    }

    println!("\ndet_audit: {counts}");

    let findings_json: Vec<serde_json::Value> = audit
        .findings
        .iter()
        .map(|f| {
            serde_json::json!({
                "code": f.code,
                "file": f.file.clone(),
                "line": f.line,
                "message": f.message.clone(),
            })
        })
        .collect();
    let allowed_json: Vec<serde_json::Value> = audit
        .allowed
        .iter()
        .map(|f| {
            serde_json::json!({
                "code": f.code,
                "file": f.file.clone(),
                "line": f.line,
                "reason": f.suppressed.clone().unwrap_or_default(),
            })
        })
        .collect();
    let tape_json: Vec<serde_json::Value> = tape_findings
        .iter()
        .map(|(code, message)| serde_json::json!({ "code": code, "message": message }))
        .collect();
    let perf = bench::perf::PerfBlock::new(
        bench::perf::run_header("det_audit", None),
        vec![
            bench::perf::sample(
                "audit/det/files",
                bench::perf::Unit::Count,
                counts.files as f64,
            ),
            bench::perf::sample(
                "audit/det/allowed",
                bench::perf::Unit::Count,
                counts.suppressed as f64,
            ),
        ],
    );
    let report = serde_json::json!({
        "bench": "det_audit",
        "files": counts.files,
        "unsuppressed": counts.unsuppressed(),
        "allowed": counts.suppressed,
        "counts": {
            "D000": counts.d000,
            "D001": counts.d001,
            "D002": counts.d002,
            "D003": counts.d003,
            "D004": counts.d004,
            "D005": counts.d005,
            "D010": counts.d010,
            "D011": counts.d011,
        },
        "findings": findings_json,
        "allowlist": allowed_json,
        "tape_findings": tape_json,
        "clean": counts.unsuppressed() == 0,
        "perf": perf.to_json(),
    });
    let rendered = serde_json::to_string_pretty(&report).expect("render report");
    std::fs::write(&out_path, rendered + "\n").expect("write BENCH_det_audit.json");
    println!("wrote {}", out_path.display());

    if counts.unsuppressed() > 0 {
        eprintln!(
            "det_audit: {} unsuppressed finding(s) — fix them or annotate audited \
             sites with `// det-ok: <reason>`",
            counts.unsuppressed()
        );
        std::process::exit(1);
    }
}
