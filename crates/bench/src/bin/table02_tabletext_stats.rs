//! Table II: statistics of the Chart2Text(-like) and WikiTableText(-like)
//! datasets, including the ≤150-cell filter of §IV-B.

use bench::{emit, experiment_scale, Report};
use corpus::{Corpus, Split, TableTextExample};

fn cell_stats(examples: &[TableTextExample]) -> (usize, usize, usize, usize) {
    let cells: Vec<usize> = examples.iter().map(|e| e.table.cell_count()).collect();
    let min = cells.iter().copied().min().unwrap_or(0);
    let max = cells.iter().copied().max().unwrap_or(0);
    let le150 = cells.iter().filter(|&&c| c <= 150).count();
    let gt150 = cells.len() - le150;
    (min, max, le150, gt150)
}

fn split_counts(corpus: &Corpus, examples: &[TableTextExample]) -> [usize; 4] {
    let mut out = [0usize; 4];
    for e in examples {
        match corpus.split_of(&e.db_name) {
            Split::Train => out[0] += 1,
            Split::Valid => out[1] += 1,
            Split::Test => out[2] += 1,
        }
        out[3] += 1;
    }
    out
}

fn main() {
    let scale = experiment_scale();
    let corpus = Corpus::generate(&scale.corpus_config());

    let widths = [8usize, 24, 26];
    let mut r = Report::new("Table II — Chart2Text / WikiTableText statistics");
    r.row(
        &widths,
        &["Split", "Chart2Text (paper)", "WikiTableText (paper)"],
    );
    r.rule(&widths);
    let c2t = split_counts(&corpus, &corpus.chart2text);
    let wtt = split_counts(&corpus, &corpus.wikitabletext);
    let paper_c2t = [24368, 5222, 5221, 34811];
    let paper_wtt = [10000, 1318, 2000, 13318];
    for (i, label) in ["Train", "Valid", "Test", "Total"].iter().enumerate() {
        r.row(
            &widths,
            &[
                label,
                &format!("{} ({})", c2t[i], paper_c2t[i]),
                &format!("{} ({})", wtt[i], paper_wtt[i]),
            ],
        );
    }
    r.line("");
    r.row(
        &widths,
        &["Cells", "Chart2Text (paper)", "WikiTableText (paper)"],
    );
    r.rule(&widths);
    let (c_min, c_max, c_le, c_gt) = cell_stats(&corpus.chart2text);
    let (w_min, w_max, w_le, w_gt) = cell_stats(&corpus.wikitabletext);
    r.row(
        &widths,
        &["Min.", &format!("{c_min} (4)"), &format!("{w_min} (27)")],
    );
    r.row(
        &widths,
        &[
            "Max.",
            &format!("{c_max} (8000)"),
            &format!("{w_max} (108)"),
        ],
    );
    r.row(
        &widths,
        &[
            "<=150",
            &format!("{c_le} (34272)"),
            &format!("{w_le} (13318)"),
        ],
    );
    r.row(
        &widths,
        &[">150", &format!("{c_gt} (539)"), &format!("{w_gt} (0)")],
    );
    r.line("");
    r.line(
        "The >150-cell rows are filtered before pre-training exactly as §IV-B prescribes; \
         our chart-derived tables are small by construction, so the filter removes nothing.",
    );
    emit("table02_tabletext_stats", &r.render());
}
