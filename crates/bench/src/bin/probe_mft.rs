//! Diagnostic: inspect raw predictions of the cached MFT DataVisT5
//! checkpoint on each task.

use bench::experiment_scale;
use corpus::Split;
use datavist5::config::Size;
use datavist5::data::Task;
use datavist5::zoo::{ModelKind, Regime, Zoo};

fn main() {
    let zoo = Zoo::new(experiment_scale());
    let kind = ModelKind::DataVisT5(Size::Base, Regime::Mft);
    let trained = zoo.train_model_cached(kind, None);
    let predictor = zoo.predictor(kind, trained);
    for task in Task::ALL {
        println!("== {} ==", task.label());
        for e in zoo.datasets.of(task, Split::Test).iter().take(2) {
            println!("  input : {}", &e.input[..e.input.len().min(110)]);
            println!("  gold  : {}", &e.output[..e.output.len().min(110)]);
            let p = predictor.predict(e);
            println!("  pred  : {}", &p[..p.len().min(160)]);
        }
    }
}
