//! Table XI + Figure 9: table-to-text case study — every model's
//! description of one held-out (single-row, WikiTableText-style) table.

use bench::{emit, experiment_scale, Report};
use corpus::Split;
use datavist5::case_study::build_case;
use datavist5::config::Size;
use datavist5::data::Task;
use datavist5::zoo::{ModelKind, Regime, Zoo};

fn main() {
    let scale = experiment_scale();
    let zoo = Zoo::new(scale);
    let examples = zoo.datasets.of(Task::TableToText, Split::Test);
    // A single-row fact table (the WikiTableText style of Figure 9).
    let example = examples
        .iter()
        .find(|e| e.input.contains("row 1 :") && !e.input.contains("row 2 :"))
        .or_else(|| examples.first())
        .expect("no test examples");

    let systems = vec![
        ModelKind::Seq2Vis,
        ModelKind::Transformer,
        ModelKind::Bart,
        ModelKind::CodeT5Sft(Size::Base),
        ModelKind::DataVisT5(Size::Large, Regime::Mft),
    ];
    let mut predictions = Vec::new();
    for kind in systems {
        eprintln!("[table11] {}…", kind.label());
        let task = match kind {
            ModelKind::DataVisT5(_, Regime::Mft) => None,
            _ => Some(Task::TableToText),
        };
        let trained = zoo.train_model_cached(kind, task);
        let predictor = zoo.predictor(kind, trained);
        predictions.push((kind.label(), predictor.predict(example)));
    }

    let case = build_case(example, &zoo.corpus, &predictions);
    let mut r = Report::new("Table XI / Figure 9 — table-to-text case study");
    r.line(format!("database: {}", example.db_name));
    r.line("Figure 9 (the linearized table):");
    r.line(format!("  {}", example.input));
    r.line(case.render());
    r.line(
        "Paper analogue: the raw seq2seq degenerates; pretrained SFT models are close but \
         misattribute details; the MFT DataVisT5 reproduces the fact sentence.",
    );
    emit("table11_case_table_to_text", &r.render());
}
