//! Table VI: vis-to-text — BLEU/ROUGE/METEOR for every comparison system.

use bench::{emit, experiment_scale, m4, Report};
use corpus::Split;
use datavist5::config::Size;
use datavist5::data::Task;
use datavist5::eval::eval_text_gen;
use datavist5::zoo::{ModelKind, Regime, Zoo};

/// Paper values: BLEU-1/2/4, ROUGE-1/2/L, METEOR.
const PAPER: &[(&str, [f64; 7])] = &[
    (
        "Seq2Vis",
        [0.2766, 0.1520, 0.0296, 0.3571, 0.1343, 0.2893, 0.2528],
    ),
    (
        "Transformer",
        [0.2825, 0.1635, 0.0345, 0.3634, 0.1476, 0.2958, 0.2755],
    ),
    (
        "BART",
        [0.4301, 0.2892, 0.1009, 0.4721, 0.2209, 0.3647, 0.4586],
    ),
    (
        "CodeT5+ (220M) +SFT",
        [0.4431, 0.3060, 0.1236, 0.4873, 0.2403, 0.3770, 0.4872],
    ),
    (
        "CodeT5+ (770M) +SFT",
        [0.4518, 0.3154, 0.1278, 0.4898, 0.2431, 0.3928, 0.4965],
    ),
    (
        "GPT-4 (few-shot)",
        [0.3843, 0.2210, 0.0387, 0.4180, 0.1527, 0.2925, 0.4350],
    ),
    (
        "LLama2-7b +LoRA",
        [0.3029, 0.1520, 0.0314, 0.3581, 0.1055, 0.2733, 0.3028],
    ),
    (
        "Mistral-7b +LoRA",
        [0.3512, 0.2431, 0.0897, 0.4402, 0.2158, 0.3549, 0.3925],
    ),
    (
        "DataVisT5 (220M) +MFT",
        [0.4584, 0.3160, 0.1245, 0.5000, 0.2437, 0.3978, 0.4986],
    ),
    (
        "DataVisT5 (770M) +MFT",
        [0.4566, 0.3155, 0.1332, 0.4974, 0.2460, 0.3986, 0.4851],
    ),
];

fn main() {
    let scale = experiment_scale();
    let zoo = Zoo::new(scale);
    let examples = zoo.datasets.of(Task::VisToText, Split::Test);
    let cap = scale.eval_cap();

    let systems: Vec<ModelKind> = vec![
        ModelKind::Seq2Vis,
        ModelKind::Transformer,
        ModelKind::Bart,
        ModelKind::CodeT5Sft(Size::Base),
        ModelKind::CodeT5Sft(Size::Large),
        ModelKind::Gpt4FewShot,
        ModelKind::Llama2Lora,
        ModelKind::Mistral7bLora,
        ModelKind::DataVisT5(Size::Base, Regime::Mft),
        ModelKind::DataVisT5(Size::Large, Regime::Mft),
    ];

    let widths = [24usize, 9, 9, 9, 9, 9, 9, 9];
    let mut r = Report::new("Table VI — vis-to-text (measured; paper below each row)");
    r.line(format!("test examples: {} | cap: {cap}", examples.len()));
    r.row(
        &widths,
        &[
            "Model", "BLEU-1", "BLEU-2", "BLEU-4", "ROUGE-1", "ROUGE-2", "ROUGE-L", "METEOR",
        ],
    );
    r.rule(&widths);

    for kind in systems {
        let label = kind.label();
        eprintln!("[table06] training/evaluating {label}…");
        let scores = if kind == ModelKind::Gpt4FewShot {
            let sim = zoo.gpt4_predictor();
            eval_text_gen(&sim, &examples, cap)
        } else {
            let task = match kind {
                ModelKind::DataVisT5(_, Regime::Mft) => None,
                _ => Some(Task::VisToText),
            };
            let trained = zoo.train_model_cached(kind, task);
            let predictor = zoo.predictor(kind, trained);
            eval_text_gen(&*predictor, &examples, cap)
        };
        r.row(
            &widths,
            &[
                &label,
                &m4(scores.bleu1),
                &m4(scores.bleu2),
                &m4(scores.bleu4),
                &m4(scores.rouge1),
                &m4(scores.rouge2),
                &m4(scores.rouge_l),
                &m4(scores.meteor),
            ],
        );
        if let Some((_, p)) = PAPER.iter().find(|(l, _)| *l == label) {
            let cells: Vec<String> = p.iter().map(|&x| m4(x)).collect();
            let mut row: Vec<&str> = vec!["  (paper)"];
            row.extend(cells.iter().map(|s| s.as_str()));
            r.row(&widths, &row);
        }
    }
    r.line("");
    r.line(
        "Expected shape: the un-pretrained seq2seq baselines trail; pretrained SFT models \
         cluster near the top; DataVisT5 MFT matches or beats its SFT base.",
    );
    emit("table06_vis_to_text", &r.render());
}
