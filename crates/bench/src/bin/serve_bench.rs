//! Serving-engine load generator: seeded bursty traces through the full
//! text → filtration → tokens → continuous-batching pipeline.
//!
//! Three phases, one report:
//!
//! 1. **Virtual double run (1 thread)** — the same seeded bursty trace
//!    (corpus-derived requests for all four tasks, periodic deadlines)
//!    replayed twice under the virtual clock; the two
//!    [`ServeReport::fingerprint`]s must be bitwise-identical.
//! 2. **Thread sweep (4 threads)** — the same trace again with 4 tensor
//!    worker threads; the fingerprint must equal the 1-thread one (the
//!    kernels run under certified thread-count-invariant schedules).
//! 3. **Real-time concurrent load** — `--clients` threads submit
//!    deadline-free requests through the front door against a real
//!    monotonic clock; sustained QPS, p50/p99 latency, and per-task
//!    fairness are measured here.
//! 4. **Schema-skewed cache phases** — the same corpus workload at
//!    0% / 50% / 90% schema reuse, each run three times: prefix cache
//!    on (wall-clock timed), cache on again, cache off. All three
//!    fingerprints must be bitwise-identical (the cache is invisible
//!    at the bits level); hit rate and QPS per phase land in the
//!    report, and the 90%-reuse phase must actually hit.
//!
//! The process exits nonzero unless every determinism gate holds
//! (`identical: true`, including all cache phases), accounting is exact
//! (zero requests dropped without a typed rejection), and the
//! 90%-reuse phase shows a nonzero hit rate — CI runs a 2-client smoke
//! of this.
//!
//! Writes `BENCH_serve.json` at the repo root.
//!
//! Usage: `serve_bench [--requests N] [--clients N] [--slots N]
//! [--queue-cap N] [--max-out N] [--seed S] [--cache-bytes N]
//! [--out PATH]`

use std::time::Instant;

use bench::trace::{bursty_offsets, corpus_requests, corpus_requests_with_reuse};
use datavist5::config::{Scale, Size};
use datavist5::zoo::Zoo;
use nn::batch::BatchedDecodeState;
use nn::param::ParamSet;
use nn::prefix_cache::PrefixCache;
use nn::t5::T5Model;
use serve::{serve_concurrent, ServeConfig, ServeEngine, ServeReport, ServeRequest};
use tensor::XorShift;
use tokenizer::special::EOS;

fn main() {
    let mut requests = 24usize;
    let mut clients = 4usize;
    let mut slots = 4usize;
    let mut queue_cap = 16usize;
    let mut max_out = 12usize;
    let mut seed = 0x5e12feu64;
    let mut cache_bytes = 32usize << 20;
    let mut out_path = bench::default_bench_out("serve");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match a.as_str() {
            "--requests" => requests = val("--requests").parse().expect("--requests"),
            "--clients" => clients = val("--clients").parse().expect("--clients"),
            "--slots" => slots = val("--slots").parse().expect("--slots"),
            "--queue-cap" => queue_cap = val("--queue-cap").parse().expect("--queue-cap"),
            "--max-out" => max_out = val("--max-out").parse().expect("--max-out"),
            "--seed" => seed = val("--seed").parse().expect("--seed"),
            "--cache-bytes" => cache_bytes = val("--cache-bytes").parse().expect("--cache-bytes"),
            "--out" => out_path = val("--out").into(),
            other => panic!("unknown argument {other}"),
        }
    }
    assert!(
        clients >= 1 && requests >= clients,
        "need requests >= clients >= 1"
    );

    // The full serving stack: corpus + tokenizer from the zoo, a
    // deterministic random-weight model (scheduling and throughput do
    // not depend on what the weights say), requests built through the
    // text-level path so per-request schema filtration actually runs.
    let zoo = Zoo::new(Scale::Smoke);
    let vocab = zoo.tok.vocab().len();
    let mut ps = ParamSet::new();
    let mut rng = XorShift::new(seed);
    let cfg = Scale::Smoke.t5_config(Size::Base, vocab);
    let model = T5Model::new(&mut ps, "serve", cfg, &mut rng);

    let texts = corpus_requests(&zoo.corpus, requests);
    let offsets = bursty_offsets(seed, requests, clients.max(2), 5_000_000, 1_000_000);
    // Virtual-phase trace: every 5th request carries a 40 ms deadline so
    // the deterministic fingerprint also covers R002/R003 paths.
    let trace: Vec<(u64, ServeRequest)> = texts
        .iter()
        .zip(&offsets)
        .enumerate()
        .map(|(i, (tr, &arrival))| {
            let mut req = ServeRequest::from_task(i as u64, tr, &zoo.tok);
            if i % 5 == 4 {
                req = req.with_deadline(arrival + 40_000_000);
            }
            (arrival, req)
        })
        .collect();

    let hardware_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!(
        "[serve_bench] requests={requests} clients={clients} slots={slots} \
         queue_cap={queue_cap} max_out={max_out} vocab={vocab} \
         hardware_threads={hardware_threads}"
    );

    // Phases 1–2: virtual-clock determinism gates.
    let virtual_run = |threads: usize| -> ServeReport {
        tensor::par::set_threads(threads);
        let dec = BatchedDecodeState::new(&model, &ps, slots);
        let mut engine = ServeEngine::new(dec, ServeConfig::new(queue_cap, max_out, EOS));
        engine.run_trace(&trace).expect("bench trace never poisons");
        tensor::par::set_threads(1);
        engine.into_report()
    };
    let t0 = Instant::now();
    let run_a = virtual_run(1);
    let run_b = virtual_run(1);
    let identical_rerun = run_a.fingerprint() == run_b.fingerprint();
    let run_4t = virtual_run(4);
    let identical_threads = run_a.fingerprint() == run_4t.fingerprint();
    let identical = identical_rerun && identical_threads;
    eprintln!(
        "[serve_bench] virtual double-run identical={identical_rerun} \
         thread-sweep identical={identical_threads} ({:.2}s)",
        t0.elapsed().as_secs_f64()
    );
    assert!(run_a.accounted(), "virtual run dropped a request silently");

    let vlat = run_a.latencies_ns(None);
    let virtual_json = serde_json::json!({
        "end_ms": run_a.end_ns as f64 / 1e6,
        "arrivals": run_a.arrivals as i64,
        "completed": run_a.completed as i64,
        "rejected": run_a.rejections() as i64,
        "p50_ms": ServeReport::percentile_ns(&vlat, 50) as f64 / 1e6,
        "p99_ms": ServeReport::percentile_ns(&vlat, 99) as f64 / 1e6,
        "fairness": run_a.fairness(),
    });

    // Phase 3: real-time concurrent load through the front door. Time
    // flows only from the injected monotonic clock (virtual costs zero);
    // requests carry no deadlines so fairness reflects scheduling, not
    // wall-clock luck on a loaded host.
    let dec = BatchedDecodeState::new(&model, &ps, slots);
    let mut cfg = ServeConfig::new(queue_cap, max_out, EOS);
    cfg.step_cost_ns = 0;
    cfg.admit_cost_ns = 0;
    let mut engine = ServeEngine::new(dec, cfg);
    let client_loads: Vec<Vec<ServeRequest>> = (0..clients)
        .map(|c| {
            texts
                .iter()
                .enumerate()
                .filter(|(i, _)| i % clients == c)
                .map(|(i, tr)| ServeRequest::from_task(i as u64, tr, &zoo.tok))
                .collect()
        })
        .collect();
    let epoch = Instant::now();
    let now = move || epoch.elapsed().as_nanos() as u64;
    let t1 = Instant::now();
    let per_client = serve_concurrent(&mut engine, client_loads, &now);
    let wall_secs = t1.elapsed().as_secs_f64();
    engine.shutdown();
    let real = engine.into_report();
    assert!(real.accounted(), "real-time run dropped a request silently");
    let delivered: usize = per_client.iter().map(Vec::len).sum();
    assert_eq!(delivered, requests, "a client is missing responses");

    let rlat = real.latencies_ns(None);
    let qps = real.completed as f64 / wall_secs;
    let mut per_task_map = serde_json::Map::new();
    for (task, t) in &real.per_task {
        let lat = real.latencies_ns(Some(*task));
        per_task_map.insert(
            task.label().to_string(),
            serde_json::json!({
                "arrivals": t.arrivals as i64,
                "completed": t.completed as i64,
                "rejected": t.rejected as i64,
                "p99_ms": ServeReport::percentile_ns(&lat, 99) as f64 / 1e6,
            }),
        );
    }
    let per_task: serde_json::Value = per_task_map.into();
    let dropped_without_rejection = real.arrivals - real.completed - real.rejections();
    eprintln!(
        "[serve_bench] real-time: {qps:.1} req/s sustained, p50 {:.1} ms, p99 {:.1} ms, \
         fairness {:.3}",
        ServeReport::percentile_ns(&rlat, 50) as f64 / 1e6,
        ServeReport::percentile_ns(&rlat, 99) as f64 / 1e6,
        real.fairness()
    );

    // Phase 4: schema-skewed cache phases. Same workload shape at
    // increasing schema reuse; each phase proves the prefix cache is
    // bit-invisible (cache-on twice + cache-off once, fingerprints all
    // equal) and reports hit rate plus wall-clock QPS of the timed
    // cache-on run. Deadline-free so completed == arrivals and QPS
    // comparisons across phases measure compute, not deadline luck.
    let mut cache_phases = Vec::new();
    let mut cache_samples: Vec<bench::perf::PerfSample> = Vec::new();
    let mut cache_identical = true;
    let mut reuse90_hit_rate = 0.0f64;
    for reuse in [0u8, 50, 90] {
        let texts = corpus_requests_with_reuse(&zoo.corpus, requests, reuse, seed);
        let trace: Vec<(u64, ServeRequest)> = texts
            .iter()
            .zip(&offsets)
            .enumerate()
            .map(|(i, (tr, &arrival))| (arrival, ServeRequest::from_task(i as u64, tr, &zoo.tok)))
            .collect();
        let cached_run = |cache: Option<usize>| -> (ServeReport, f64) {
            let dec = match cache {
                Some(cap) => {
                    BatchedDecodeState::with_prefix_cache(&model, &ps, slots, PrefixCache::new(cap))
                }
                None => BatchedDecodeState::new(&model, &ps, slots),
            };
            let mut engine = ServeEngine::new(dec, ServeConfig::new(queue_cap, max_out, EOS));
            let t = Instant::now();
            engine.run_trace(&trace).expect("bench trace never poisons");
            let wall = t.elapsed().as_secs_f64();
            (engine.into_report(), wall)
        };
        let (on_a, wall) = cached_run(Some(cache_bytes));
        let (on_b, _) = cached_run(Some(cache_bytes));
        let (off, _) = cached_run(None);
        let identical =
            on_a.fingerprint() == on_b.fingerprint() && on_a.fingerprint() == off.fingerprint();
        cache_identical &= identical;
        assert!(on_a.accounted(), "cache phase dropped a request silently");
        let stats = on_a.cache.expect("cache-on run reports stats");
        if reuse == 90 {
            reuse90_hit_rate = stats.hit_rate();
        }
        let qps = on_a.completed as f64 / wall;
        eprintln!(
            "[serve_bench] cache reuse={reuse}%: hit_rate={:.3} \
             ({} hits / {} lookups), {qps:.1} req/s, identical={identical}",
            stats.hit_rate(),
            stats.hits,
            stats.lookups()
        );
        cache_samples.push(bench::perf::sample(
            &format!("serve/cache/reuse{reuse}/qps"),
            bench::perf::Unit::Qps,
            qps,
        ));
        if reuse == 90 {
            cache_samples.push(bench::perf::sample(
                "serve/cache/reuse90/hit_rate",
                bench::perf::Unit::Ratio,
                stats.hit_rate(),
            ));
        }
        cache_phases.push(serde_json::json!({
            "reuse_pct": reuse,
            "hit_rate": stats.hit_rate(),
            "hits": stats.hits as i64,
            "misses": stats.misses as i64,
            "insertions": stats.insertions as i64,
            "evictions": stats.evictions as i64,
            "bypasses": stats.bypasses as i64,
            "completed": on_a.completed as i64,
            "wall_secs": wall,
            "qps": qps,
            "identical": identical,
        }));
    }
    let identical = identical && cache_identical;

    let mut samples = vec![
        bench::perf::sample(
            "serve/virtual/p99_ms",
            bench::perf::Unit::Ms,
            ServeReport::percentile_ns(&vlat, 99) as f64 / 1e6,
        ),
        bench::perf::sample("serve/real/qps", bench::perf::Unit::Qps, qps),
        bench::perf::sample(
            "serve/real/p99_ms",
            bench::perf::Unit::Ms,
            ServeReport::percentile_ns(&rlat, 99) as f64 / 1e6,
        ),
    ];
    samples.extend(cache_samples);
    let perf = bench::perf::PerfBlock::new(bench::perf::run_header("serve", None), samples);

    // Legacy ad-hoc fields kept alongside `perf` for one release.
    let json = serde_json::json!({
        "requests": requests,
        "clients": clients,
        "slots": slots,
        "queue_cap": queue_cap,
        "max_out": max_out,
        "seed": seed as i64,
        "cache_bytes": cache_bytes,
        "vocab": vocab,
        "hardware_threads": hardware_threads,
        "identical": identical,
        "identical_rerun": identical_rerun,
        "identical_4_threads": identical_threads,
        "identical_cache_phases": cache_identical,
        "dropped_without_rejection": dropped_without_rejection as i64,
        "virtual": virtual_json,
        "cache_phases": cache_phases,
        "real": {
            "wall_secs": wall_secs,
            "sustained_qps": qps,
            "arrivals": real.arrivals as i64,
            "completed": real.completed as i64,
            "rejected": real.rejections() as i64,
            "p50_ms": ServeReport::percentile_ns(&rlat, 50) as f64 / 1e6,
            "p99_ms": ServeReport::percentile_ns(&rlat, 99) as f64 / 1e6,
            "fairness": real.fairness(),
            "per_task": per_task,
        },
        "perf": perf.to_json(),
    });
    let rendered = serde_json::to_string_pretty(&json).expect("serialize");
    println!("{rendered}");
    std::fs::write(&out_path, rendered + "\n").expect("write BENCH_serve.json");
    eprintln!("[serve_bench] -> {}", out_path.display());

    if !identical || dropped_without_rejection != 0 || reuse90_hit_rate <= 0.0 {
        eprintln!(
            "[serve_bench] FAIL: identical={identical} \
             dropped_without_rejection={dropped_without_rejection} \
             reuse90_hit_rate={reuse90_hit_rate:.3}"
        );
        std::process::exit(1);
    }
}
