//! Bug-vs-scale diagnostic: overfit one database's text-to-vis examples.
//! If the model cannot produce distinct, correct outputs for distinct
//! inputs it has seen hundreds of times, conditioning is broken; if it
//! can, the full-corpus gap is a capacity/budget issue.

use bench::experiment_scale;
use corpus::Split;
use datavist5::data::Task;
use datavist5::finetune::tokenize_pair;
use datavist5::zoo::Zoo;
use nn::decode::greedy_decode;
use nn::optim::LrSchedule;
use nn::t5::DecodeState;
use nn::train::{train_seq2seq, TrainConfig};
use tokenizer::special;

fn main() {
    let scale = experiment_scale();
    let zoo = Zoo::new(scale);
    // One database's train examples only.
    let all = zoo.datasets.of(Task::TextToVis, Split::Train);
    let db = all[0].db_name.clone();
    let subset: Vec<_> = all.iter().filter(|e| e.db_name == db).collect();
    println!("overfitting {} examples from {db}", subset.len());
    let data: Vec<(Vec<u32>, Vec<u32>)> = subset
        .iter()
        .map(|e| tokenize_pair(&zoo.tok, &e.input, &e.output, scale.max_len()))
        .collect();

    let mut ps = nn::param::ParamSet::new();
    let mut rng = tensor::XorShift::new(77);
    let cfg = scale.t5_config(datavist5::config::Size::Base, zoo.tok.vocab().len());
    let model = nn::t5::T5Model::new(&mut ps, "ovf", cfg, &mut rng);

    for round in 0..4 {
        let tc = TrainConfig {
            steps: 150,
            accum: 4,
            schedule: LrSchedule::Constant(5e-3),
            smoothing: 0.0,
            seed: round as u64,
            eval_every: 0,
            doctor: round == 0,
            sanitizer: analysis::SanitizerMode::FirstStep,
            ckpt: None,
        };
        train_seq2seq(&model, &mut ps, &data, &[], &tc);
        let loss = nn::train::eval_mean(&model, &ps, &data);
        println!("after {} steps: loss {loss:.3}", (round + 1) * 150);
    }
    // Conditioning check: target likelihood under its own source vs a
    // mismatched source.
    for i in 0..3 {
        let (src_i, tgt_i) = &data[i];
        let (src_j, _) = &data[(i + 5) % data.len()];
        let own = model.eval_loss(&ps, src_i, tgt_i);
        let crossed = model.eval_loss(&ps, src_j, tgt_i);
        println!("example {i}: loss(tgt|own src) = {own:.3}  loss(tgt|wrong src) = {crossed:.3}");
    }
    let mut exact = 0;
    for (i, e) in subset.iter().take(8).enumerate() {
        let (src, _) = &data[i];
        let mut state = DecodeState::new(&model, &ps, src);
        let out = greedy_decode(&mut state, special::EOS, 48);
        let pred = zoo.tok.decode(&out);
        let gold = &e.output;
        if pred == *gold {
            exact += 1;
        }
        if i < 4 {
            println!("gold: {gold}");
            println!("pred: {pred}");
        }
    }
    println!("exact on trained examples: {exact}/8");
}
