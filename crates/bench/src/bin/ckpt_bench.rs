//! Checkpoint cost: what a periodic crash-safe snapshot adds to training.
//!
//! For each size preset this measures the serialized checkpoint size
//! (weights + Adam moments + train state), the atomic save and the
//! load+decode latency, and an average optimizer-step time on the same
//! model — reporting checkpoint overhead as a percentage of one training
//! step, i.e. what `every = 1` would cost (divide by `every` for any
//! other cadence).
//!
//! Writes `BENCH_ckpt.json` at the repo root:
//! `{presets: [{preset, param_scalars, ckpt_bytes, save_ms, load_ms,
//!   step_ms, overhead_pct_per_step}]}`.
//!
//! Usage: `ckpt_bench [--steps N] [--out PATH]`

use std::time::Instant;

use analysis::SanitizerMode;
use nn::ckpt::{self, StdIo, TrainState};
use nn::optim::{AdamW, LrSchedule};
use nn::param::ParamSet;
use nn::t5::{T5Config, T5Model};
use nn::train::{train_seq2seq, Example, TrainConfig};
use tensor::XorShift;

const VOCAB: usize = 512;

fn dataset() -> Vec<Example> {
    (0..8)
        .map(|i| {
            let a = 3 + i;
            let b = 9 + i;
            (vec![a, b, a + 1, 1], vec![b, a, 1])
        })
        .collect()
}

fn bench_preset(
    preset: &str,
    cfg: T5Config,
    steps: usize,
) -> (serde_json::Value, Vec<bench::perf::PerfSample>) {
    let mut ps = ParamSet::new();
    let mut rng = XorShift::new(0xc4b7);
    let model = T5Model::new(&mut ps, "bench", cfg, &mut rng);
    let data = dataset();

    // Average optimizer-step time over a short run (no checkpointing).
    let tc = TrainConfig {
        steps,
        accum: 2,
        schedule: LrSchedule::Constant(1e-3),
        smoothing: 0.0,
        seed: 7,
        eval_every: 0,
        doctor: false,
        sanitizer: SanitizerMode::Off,
        ckpt: None,
    };
    let t0 = Instant::now();
    let report = train_seq2seq(&model, &mut ps, &data, &[], &tc);
    let step_ms = t0.elapsed().as_secs_f64() * 1e3 / report.steps as f64;

    // A realistic mid-run snapshot: weights, moments, and train state.
    let opt = AdamW::default();
    let state = TrainState {
        rng_state: 0xfeed,
        next_step: steps as u64,
        cursor: 3,
        order: (0..data.len() as u32).collect(),
        tail_sum: report.final_train_loss,
        tail_n: 1,
        step_losses: report.step_losses.clone(),
        valid_losses: vec![],
    };
    let snap = ps.snapshot(Some(&opt)).with_train(state);

    let dir = std::env::temp_dir().join("datavist5_ckpt_bench");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{preset}.bin"));

    let t1 = Instant::now();
    let mut io = StdIo;
    ckpt::save(&mut io, &path, &snap).expect("save checkpoint");
    let save_ms = t1.elapsed().as_secs_f64() * 1e3;

    let bytes = std::fs::metadata(&path).expect("stat checkpoint").len();

    let t2 = Instant::now();
    let loaded = ckpt::load(&StdIo, &path).expect("load checkpoint");
    let load_ms = t2.elapsed().as_secs_f64() * 1e3;
    assert_eq!(loaded, snap, "checkpoint round-trip drifted");

    let overhead_pct = save_ms / step_ms * 100.0;
    eprintln!(
        "[ckpt_bench] {preset}: {bytes} B | save {save_ms:.2} ms | load {load_ms:.2} ms | \
         step {step_ms:.2} ms | overhead {overhead_pct:.1}%/step"
    );
    let legacy = serde_json::json!({
        "preset": preset,
        "param_scalars": ps.num_scalars(),
        "ckpt_bytes": bytes as i64,
        "save_ms": save_ms,
        "load_ms": load_ms,
        "step_ms": step_ms,
        "overhead_pct_per_step": overhead_pct,
    });
    let samples = vec![
        bench::perf::sample(
            &format!("ckpt/{preset}/save_ms"),
            bench::perf::Unit::Ms,
            save_ms,
        ),
        bench::perf::sample(
            &format!("ckpt/{preset}/load_ms"),
            bench::perf::Unit::Ms,
            load_ms,
        ),
        bench::perf::sample(
            &format!("ckpt/{preset}/step_ms"),
            bench::perf::Unit::Ms,
            step_ms,
        ),
    ];
    (legacy, samples)
}

fn main() {
    let mut steps = 4usize;
    let mut out_path = bench::default_bench_out("ckpt");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match a.as_str() {
            "--steps" => steps = val("--steps").parse().expect("--steps"),
            "--out" => out_path = val("--out").into(),
            other => panic!("unknown argument {other}"),
        }
    }

    let (base_json, base_samples) = bench_preset("base", T5Config::base(VOCAB), steps);
    let (large_json, large_samples) = bench_preset("large", T5Config::large(VOCAB), steps);
    let presets = vec![base_json, large_json];
    let mut samples = base_samples;
    samples.extend(large_samples);
    // The preset lives in the series names (`ckpt/base/…`, `ckpt/large/…`)
    // since one run covers both; legacy `presets` kept for one release.
    let perf = bench::perf::PerfBlock::new(bench::perf::run_header("ckpt", None), samples);
    let json = serde_json::json!({ "presets": presets, "perf": perf.to_json() });
    let rendered = serde_json::to_string_pretty(&json).expect("serialize");
    println!("{rendered}");
    std::fs::write(&out_path, rendered + "\n").expect("write BENCH_ckpt.json");
    eprintln!("[ckpt_bench] -> {}", out_path.display());
}
