//! Table XII: ablation study — average metric value per task (×100) for
//! the DataVisT5 (770M-tier) variants and the initialization baselines.
//!
//! Per-task summaries follow the paper: text-to-vis is the mean of the
//! four EM metrics pooled over both join subsets; the generative tasks are
//! the mean of their seven text metrics.

use bench::{emit, experiment_scale, m100, Report};
use corpus::Split;
use datavist5::config::Size;
use datavist5::data::Task;
use datavist5::eval::{eval_text_gen, eval_text_to_vis};
use datavist5::zoo::{ModelKind, Predictor, Regime, Zoo};

const PAPER: &[(&str, [f64; 5])] = &[
    ("DataVisT5 (770M) +MFT", [65.22, 36.18, 70.62, 56.80, 57.21]),
    ("  w/o BDC", [64.49, 36.16, 69.26, 55.83, 56.44]),
    ("  w/o up-sampling", [62.95, 36.41, 70.69, 56.34, 56.60]),
    ("  w/o MFT", [62.36, 37.12, 67.35, 53.98, 54.93]),
    ("DataVisT5 (770M) +SFT", [65.01, 36.50, 70.73, 55.67, 56.98]),
    ("CodeT5+ (770M) +SFT", [62.79, 35.96, 63.03, 53.97, 53.94]),
    ("T5-large +SFT", [61.34, 33.58, 61.90, 52.03, 52.21]),
];

struct Variant {
    label: &'static str,
    kind: ModelKind,
    /// Multi-task models evaluate one checkpoint; SFT variants train one
    /// model per task.
    per_task_sft: bool,
}

fn main() {
    let scale = experiment_scale();
    let zoo = Zoo::new(scale);
    let cap = scale.eval_cap();
    let t2v = zoo.datasets.of(Task::TextToVis, Split::Test);
    let v2t = zoo.datasets.of(Task::VisToText, Split::Test);
    let qa = zoo.datasets.of(Task::FeVisQa, Split::Test);
    let tt = zoo.datasets.of(Task::TableToText, Split::Test);

    let variants = vec![
        Variant {
            label: "DataVisT5 (770M) +MFT",
            kind: ModelKind::DataVisT5(Size::Large, Regime::Mft),
            per_task_sft: false,
        },
        Variant {
            label: "  w/o BDC",
            kind: ModelKind::DataVisT5(Size::Large, Regime::MftNoBdc),
            per_task_sft: false,
        },
        Variant {
            label: "  w/o up-sampling",
            kind: ModelKind::DataVisT5(Size::Large, Regime::MftNoUpsampling),
            per_task_sft: false,
        },
        Variant {
            label: "  w/o MFT",
            kind: ModelKind::DataVisT5(Size::Large, Regime::ZeroShot),
            per_task_sft: false,
        },
        Variant {
            label: "DataVisT5 (770M) +SFT",
            kind: ModelKind::DataVisT5(Size::Large, Regime::Sft),
            per_task_sft: true,
        },
        Variant {
            label: "CodeT5+ (770M) +SFT",
            kind: ModelKind::CodeT5Sft(Size::Large),
            per_task_sft: true,
        },
        Variant {
            label: "T5-large +SFT",
            kind: ModelKind::T5Sft(Size::Large),
            per_task_sft: true,
        },
    ];

    let widths = [24usize, 12, 12, 10, 14, 8];
    let mut r =
        Report::new("Table XII — ablations: per-task average metric ×100 (paper in parens)");
    r.row(
        &widths,
        &[
            "Variant",
            "text-to-vis",
            "vis-to-text",
            "fevisqa",
            "table-to-text",
            "mean",
        ],
    );
    r.rule(&widths);

    for v in variants {
        eprintln!("[table12] {}…", v.label);
        let predictor_for = |task: Option<Task>| -> Box<dyn Predictor + '_> {
            let trained = zoo.train_model_cached(v.kind, task);
            zoo.predictor(v.kind, trained)
        };
        type PerTask<'a> = [Box<dyn Predictor + 'a>; 4];
        let [p_t2v, p_v2t, p_qa, p_tt]: PerTask<'_> = if v.per_task_sft {
            [
                predictor_for(Some(Task::TextToVis)),
                predictor_for(Some(Task::VisToText)),
                predictor_for(Some(Task::FeVisQa)),
                predictor_for(Some(Task::TableToText)),
            ]
        } else {
            [
                predictor_for(None),
                predictor_for(None),
                predictor_for(None),
                predictor_for(None),
            ]
        };
        let s_t2v = eval_text_to_vis(&*p_t2v, &t2v, &zoo.corpus, cap).mean_metric();
        let s_v2t = eval_text_gen(&*p_v2t, &v2t, cap).mean_metric();
        let s_qa = eval_text_gen(&*p_qa, &qa, cap).mean_metric();
        let s_tt = eval_text_gen(&*p_tt, &tt, cap).mean_metric();
        let mean = (s_t2v + s_v2t + s_qa + s_tt) / 4.0;
        let paper = PAPER.iter().find(|(l, _)| *l == v.label);
        let cell = |x: f64, i: usize| -> String {
            match paper {
                Some((_, p)) => format!("{} ({:.2})", m100(x), p[i]),
                None => m100(x),
            }
        };
        r.row(
            &widths,
            &[
                v.label,
                &cell(s_t2v, 0),
                &cell(s_v2t, 1),
                &cell(s_qa, 2),
                &cell(s_tt, 3),
                &cell(mean, 4),
            ],
        );
    }
    r.line("");
    r.line(
        "Expected shape: removing any designed component (BDC, up-sampling, MFT) lowers the \
         mean; zero-shot (w/o MFT) falls hardest; a code-aware start beats a generic text \
         start (CodeT5+ vs T5).",
    );
    emit("table12_ablation", &r.render());
}
