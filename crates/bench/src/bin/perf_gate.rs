//! Perf-trajectory gate CLI: compares the current `BENCH_*.json` perf
//! blocks against the latest `bench/history.jsonl` run under the
//! tolerance bands in `bench/perf_gates.toml`, renders trend charts,
//! and exits nonzero on any unsuppressed T-code (see
//! `analysis::registry`, family `perf`).
//!
//! ```text
//! cargo run --release -p bench --bin perf_gate [-- \
//!     [--bench-dir DIR] [--history PATH] [--gates PATH] \
//!     [--bless] [--out PATH]]
//! ```
//!
//! `--bless` appends the current blocks to the history as the next run
//! (the GOLDEN_BLESS idiom: regenerate the benches, eyeball the deltas,
//! bless, commit the updated `bench/history.jsonl`). The normal mode
//! never writes history — CI compares the committed BENCH files against
//! the committed baseline, so the gate bites exactly when a PR ships
//! regressed numbers without blessing them.

use std::path::PathBuf;

use bench::perf::history::{append_run, History, HistoryRecord};
use bench::perf::{gate, parse_block, trend, PerfBlock};
use bench::workspace_root;

struct Args {
    bench_dir: PathBuf,
    history: PathBuf,
    gates: PathBuf,
    out: PathBuf,
    bless: bool,
}

fn parse_args() -> Args {
    let root = workspace_root();
    let mut parsed = Args {
        bench_dir: root.clone(),
        history: root.join("bench").join("history.jsonl"),
        gates: root.join("bench").join("perf_gates.toml"),
        out: bench::default_bench_out("perf_gate"),
        bless: false,
    };
    let usage = "usage: perf_gate [--bench-dir DIR] [--history PATH] [--gates PATH] \
                 [--bless] [--out PATH]";
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut path_arg = |name: &str| match args.next() {
            Some(p) => PathBuf::from(p),
            None => {
                eprintln!("{name} needs a path; {usage}");
                std::process::exit(2);
            }
        };
        match arg.as_str() {
            "--bench-dir" => parsed.bench_dir = path_arg("--bench-dir"),
            "--history" => parsed.history = path_arg("--history"),
            "--gates" => parsed.gates = path_arg("--gates"),
            "--out" => parsed.out = path_arg("--out"),
            "--bless" => parsed.bless = true,
            other => {
                eprintln!("unknown arg {other}; {usage}");
                std::process::exit(2);
            }
        }
    }
    parsed
}

/// Reads every `BENCH_*.json` in the dir (sorted by name, skipping the
/// gate's own report) and extracts perf blocks. Files without a `"perf"`
/// key are warned about and skipped — the one-release compatibility
/// window for bins that have not adopted the schema yet.
fn load_blocks(dir: &PathBuf) -> (Vec<PerfBlock>, Vec<String>) {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| {
            eprintln!("perf_gate: cannot read {}: {e}", dir.display());
            std::process::exit(2);
        })
        .filter_map(|entry| entry.ok())
        .filter_map(|entry| entry.file_name().into_string().ok())
        .filter(|name| {
            name.starts_with("BENCH_") && name.ends_with(".json") && name != "BENCH_perf_gate.json"
        })
        .collect();
    names.sort();

    let mut blocks = Vec::new();
    let mut violations = Vec::new();
    for name in &names {
        let path = dir.join(name);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                violations.push(format!("{name}: unreadable: {e}"));
                continue;
            }
        };
        let doc = match obs::json::parse(&text) {
            Ok(d) => d,
            Err(e) => {
                violations.push(format!("{name}: invalid JSON: {e}"));
                continue;
            }
        };
        let Some(perf) = doc.get("perf") else {
            eprintln!("perf_gate: warning: {name} has no 'perf' block yet — skipped");
            continue;
        };
        match parse_block(perf) {
            Ok((block, mut bad)) => {
                violations.append(&mut bad);
                blocks.push(block);
            }
            Err(e) => violations.push(format!("{name}: {e}")),
        }
    }
    if blocks.is_empty() && violations.is_empty() {
        eprintln!(
            "perf_gate: no perf blocks found under {} — run the bench sweep first",
            dir.display()
        );
        std::process::exit(2);
    }
    (blocks, violations)
}

/// The history extended with the current blocks as a virtual next run,
/// so trend charts always include the run being gated.
fn with_current(h: &History, blocks: &[PerfBlock]) -> History {
    let mut extended = h.clone();
    let seq = h.latest_seq().map_or(1, |s| s + 1);
    for block in blocks {
        for s in &block.samples {
            extended.records.push(HistoryRecord {
                seq,
                series: s.series.clone(),
                unit: s.unit,
                value: s.value,
                bench: block.header.bench.clone(),
                preset: block.header.preset.clone(),
                git_rev: block.header.git_rev.clone(),
                hardware_threads: block.header.hardware_threads,
            });
        }
    }
    extended
}

fn main() {
    let args = parse_args();
    let (blocks, violations) = load_blocks(&args.bench_dir);
    let total_samples: usize = blocks.iter().map(|b| b.samples.len()).sum();
    println!(
        "perf_gate: {} perf block(s), {} series, {} parse violation(s)",
        blocks.len(),
        total_samples,
        violations.len()
    );

    if args.bless {
        if !violations.is_empty() {
            for v in &violations {
                eprintln!("T003 {v}");
            }
            eprintln!(
                "perf_gate: refusing to bless {} schema violation(s)",
                violations.len()
            );
            std::process::exit(1);
        }
        let seq = append_run(&args.history, &blocks).expect("append history run");
        let h = History::load(&args.history).expect("reload history");
        let trends_dir = bench::scratch_dir().join("trends");
        let written = trend::write_trends(&h, &trends_dir).expect("render trends");
        println!(
            "perf_gate: blessed run {seq} ({} series) into {}",
            total_samples,
            args.history.display()
        );
        for p in written {
            println!("  wrote {}", p.display());
        }
        return;
    }

    let gates_text = std::fs::read_to_string(&args.gates).unwrap_or_else(|e| {
        eprintln!("perf_gate: cannot read {}: {e}", args.gates.display());
        std::process::exit(2);
    });
    let cfg = gate::parse_gates(&gates_text).unwrap_or_else(|e| {
        eprintln!("perf_gate: bad {}: {e}", args.gates.display());
        std::process::exit(2);
    });
    let hist = History::load(&args.history).expect("load history");
    if hist.skipped > 0 {
        eprintln!(
            "perf_gate: warning: skipped {} malformed history line(s)",
            hist.skipped
        );
    }
    if hist.latest_seq().is_none() {
        eprintln!(
            "perf_gate: {} has no baseline run — seed it with `perf_gate --bless`",
            args.history.display()
        );
        std::process::exit(2);
    }
    let baseline = hist.latest_run();
    let report = gate::run_gate(&blocks, &violations, &baseline, &cfg);

    // Trends always render, pass or fail — a failing gate is exactly
    // when you want the chart.
    let extended = with_current(&hist, &blocks);
    let trends_dir = bench::scratch_dir().join("trends");
    let written = trend::write_trends(&extended, &trends_dir).expect("render trends");

    println!(
        "== perf gate: run vs baseline seq {} ==",
        hist.latest_seq().unwrap_or(0)
    );
    for f in &report.findings {
        match &f.suppressed {
            Some(reason) => println!("{} {} [allowed: {reason}]", f.code, f.message),
            None => println!("{} {}", f.code, f.message),
        }
    }
    if report.findings.is_empty() {
        println!(
            "gate clean: {} series within band (default ±{:.0}%)",
            report.checked,
            cfg.default_tol * 100.0
        );
    }
    for s in &report.improved {
        println!("note: '{s}' improved beyond its band — consider re-blessing");
    }
    println!("trends under {}", trends_dir.display());

    let findings_json: Vec<serde_json::Value> = report
        .findings
        .iter()
        .filter(|f| f.suppressed.is_none())
        .map(|f| {
            serde_json::json!({
                "code": f.code,
                "series": f.series.clone(),
                "message": f.message.clone(),
            })
        })
        .collect();
    let allowed_json: Vec<serde_json::Value> = report
        .findings
        .iter()
        .filter_map(|f| {
            f.suppressed.as_ref().map(|reason| {
                serde_json::json!({
                    "code": f.code,
                    "series": f.series.clone(),
                    "reason": reason.clone(),
                })
            })
        })
        .collect();
    let trend_files: Vec<serde_json::Value> = written
        .iter()
        .filter_map(|p| p.file_name().and_then(|n| n.to_str()))
        .map(|n| serde_json::json!(n))
        .collect();
    let (t001o, t001s) = report.count("T001");
    let (t002o, t002s) = report.count("T002");
    let (t003o, _) = report.count("T003");
    let (t004o, _) = report.count("T004");
    let header = bench::perf::run_header("perf_gate", None);
    let doc = serde_json::json!({
        "bench": "perf_gate",
        "baseline_seq": hist.latest_seq().unwrap_or(0) as i64,
        "series_checked": report.checked as i64,
        "unsuppressed": report.unsuppressed() as i64,
        "allowed": report.allowed() as i64,
        "counts": {
            "T001": (t001o + t001s) as i64,
            "T002": (t002o + t002s) as i64,
            "T003": t003o as i64,
            "T004": t004o as i64,
        },
        "findings": findings_json,
        "allowlist": allowed_json,
        "improved": report.improved.clone(),
        "trend_files": trend_files,
        "clean": report.clean(),
        "perf": bench::perf::PerfBlock::new(header, Vec::new()).to_json(),
    });
    let rendered = serde_json::to_string_pretty(&doc).expect("render report");
    std::fs::write(&args.out, rendered + "\n").expect("write BENCH_perf_gate.json");
    println!("wrote {}", args.out.display());

    if !report.clean() {
        eprintln!(
            "perf_gate: {} unsuppressed T-code(s) — fix the regression, adjust \
             bench/perf_gates.toml with a reasoned entry, or re-bless a deliberate \
             trade-off with `perf_gate --bless`",
            report.unsuppressed()
        );
        std::process::exit(1);
    }
}
