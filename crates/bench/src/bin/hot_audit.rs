//! Hot-path auditor CLI: the panic-freedom and allocation-discipline gate.
//!
//! Sweeps the hot-path manifest (`analysis::hot::HOT_MANIFEST` — the
//! serve engine and queue, the batched decoder, the decode loop, the
//! prefix cache, and the matmul/softmax kernels) for `unwrap`/`expect`
//! in non-test code (H001), panic-family macros inside steady-state tick
//! functions (H002), unchecked direct indexing in tick functions (H003),
//! heap allocation per tick (H004), and fallible narrowing casts feeding
//! capacity or indexing (H005). `// hot-ok: <reason>` annotations
//! allowlist audited sites; a reason-less annotation is itself a finding
//! (H000) and a stale one is H009.
//!
//! The static sweep is paired with a dynamic witness: the
//! counting-allocator test in `crates/serve/tests/zero_alloc.rs`
//! certifies that a warm decode tick performs zero heap allocations —
//! the property H004 polices at the source level.
//!
//! Writes `BENCH_hot_audit.json` at the repo root and exits nonzero on
//! any unsuppressed finding — `ci.sh` runs this as a gate.
//!
//! ```text
//! cargo run --release -p bench --bin hot_audit [-- --out PATH]
//! ```

use analysis::hot::audit_hot_sources;
use bench::workspace_root;

fn main() {
    let out_path = bench::parse_out_arg("hot_audit");

    let root = workspace_root();
    let audit = audit_hot_sources(&root).expect("walk hot-path manifest");
    let counts = &audit.counts;

    println!("== hot-path audit: panic freedom and allocation discipline ==");
    for finding in &audit.findings {
        println!("{finding}");
    }
    for finding in &audit.allowed {
        println!("{finding}");
    }
    if audit.findings.is_empty() {
        println!(
            "hot sweep clean: {} files, {} hot-ok allowlisted",
            counts.files, counts.suppressed
        );
    }

    println!("\nhot_audit: {counts}");

    let findings_json: Vec<serde_json::Value> = audit
        .findings
        .iter()
        .map(|f| {
            serde_json::json!({
                "code": f.code,
                "file": f.file.clone(),
                "line": f.line,
                "message": f.message.clone(),
            })
        })
        .collect();
    let allowed_json: Vec<serde_json::Value> = audit
        .allowed
        .iter()
        .map(|f| {
            serde_json::json!({
                "code": f.code,
                "file": f.file.clone(),
                "line": f.line,
                "reason": f.suppressed.clone().unwrap_or_default(),
            })
        })
        .collect();
    let perf = bench::perf::PerfBlock::new(
        bench::perf::run_header("hot_audit", None),
        vec![
            bench::perf::sample(
                "audit/hot/files",
                bench::perf::Unit::Count,
                counts.files as f64,
            ),
            bench::perf::sample(
                "audit/hot/allowed",
                bench::perf::Unit::Count,
                counts.suppressed as f64,
            ),
        ],
    );
    let report = serde_json::json!({
        "bench": "hot_audit",
        "files": counts.files,
        "unsuppressed": counts.unsuppressed(),
        "allowed": counts.suppressed,
        "counts": {
            "H000": counts.h000,
            "H001": counts.h001,
            "H002": counts.h002,
            "H003": counts.h003,
            "H004": counts.h004,
            "H005": counts.h005,
            "H009": counts.h009,
        },
        "findings": findings_json,
        "allowlist": allowed_json,
        "clean": counts.unsuppressed() == 0,
        "perf": perf.to_json(),
    });
    let rendered = serde_json::to_string_pretty(&report).expect("render report");
    std::fs::write(&out_path, rendered + "\n").expect("write BENCH_hot_audit.json");
    println!("wrote {}", out_path.display());

    if counts.unsuppressed() > 0 {
        eprintln!(
            "hot_audit: {} unsuppressed finding(s) — fix them or annotate audited \
             sites with `// hot-ok: <reason>`",
            counts.unsuppressed()
        );
        std::process::exit(1);
    }
}
