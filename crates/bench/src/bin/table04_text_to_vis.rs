//! Table IV: comparative text-to-vis evaluation on the cross-domain test
//! set — non-join and join subsets, Vis/Axis/Data/overall EM, for every
//! comparison system.

use bench::{emit, experiment_scale, m4, Report};
use corpus::Split;
use datavist5::config::Size;
use datavist5::data::Task;
use datavist5::eval::eval_text_to_vis;
use datavist5::zoo::{ModelKind, Regime, Zoo};

/// Paper values: (model, [nj_vis, nj_axis, nj_data, nj_em, j_vis, j_axis, j_data, j_em]).
const PAPER: &[(&str, [f64; 8])] = &[
    ("Seq2Vis", [0.8027, 0.0, 0.0024, 0.0, 0.8342, 0.0, 0.0, 0.0]),
    (
        "Transformer",
        [0.8598, 0.0071, 0.0646, 0.0024, 0.9798, 0.0021, 0.0404, 0.0],
    ),
    (
        "ncNet",
        [
            0.9311,
            0.2442,
            0.5152,
            0.1465,
            f64::NAN,
            f64::NAN,
            f64::NAN,
            f64::NAN,
        ],
    ),
    (
        "RGVisNet",
        [
            0.9701,
            0.5963,
            0.5423,
            0.4675,
            f64::NAN,
            f64::NAN,
            f64::NAN,
            f64::NAN,
        ],
    ),
    (
        "CodeT5+ (220M) +SFT",
        [
            0.9795, 0.7889, 0.6239, 0.6010, 0.9843, 0.4065, 0.3425, 0.2968,
        ],
    ),
    (
        "CodeT5+ (770M) +SFT",
        [
            0.9827, 0.7850, 0.6696, 0.6668, 0.9865, 0.4024, 0.3713, 0.3399,
        ],
    ),
    (
        "GPT-4 (few-shot)",
        [
            0.9700, 0.5507, 0.6425, 0.4726, 0.9790, 0.2755, 0.3708, 0.2313,
        ],
    ),
    (
        "LLama2-7b +LoRA",
        [
            0.9323, 0.7432, 0.6203, 0.6420, 0.9446, 0.4281, 0.3174, 0.3327,
        ],
    ),
    (
        "Mistral-7b +LoRA",
        [
            0.9821, 0.7753, 0.6649, 0.6761, 0.9246, 0.4310, 0.3386, 0.3374,
        ],
    ),
    (
        "DataVisT5 (220M) +MFT",
        [
            0.9827, 0.8078, 0.6680, 0.6688, 0.9873, 0.4123, 0.3586, 0.3324,
        ],
    ),
    (
        "DataVisT5 (770M) +MFT",
        [
            0.9850, 0.7983, 0.6770, 0.6833, 0.9884, 0.4112, 0.3863, 0.3451,
        ],
    ),
];

fn main() {
    let scale = experiment_scale();
    let zoo = Zoo::new(scale);
    let examples = zoo.datasets.of(Task::TextToVis, Split::Test);
    let cap = scale.eval_cap();

    let systems: Vec<ModelKind> = vec![
        ModelKind::Seq2Vis,
        ModelKind::Transformer,
        ModelKind::NcNet,
        ModelKind::RgVisNet,
        ModelKind::CodeT5Sft(Size::Base),
        ModelKind::CodeT5Sft(Size::Large),
        ModelKind::Gpt4FewShot,
        ModelKind::Llama2Lora,
        ModelKind::Mistral7bLora,
        ModelKind::DataVisT5(Size::Base, Regime::Mft),
        ModelKind::DataVisT5(Size::Large, Regime::Mft),
    ];

    let widths = [24usize, 9, 9, 9, 9, 9, 9, 9, 9];
    let mut r = Report::new(
        "Table IV — text-to-vis EM on the cross-domain test set (measured; paper below each row)",
    );
    r.line(format!(
        "test examples: {} | eval cap per subset: {cap}",
        examples.len()
    ));
    r.row(
        &widths,
        &[
            "Model", "nj Vis", "nj Axis", "nj Data", "nj EM", "j Vis", "j Axis", "j Data", "j EM",
        ],
    );
    r.rule(&widths);

    let mut lint_rows: Vec<(String, vql::LintCounts)> = Vec::new();
    for kind in systems {
        let label = kind.label();
        eprintln!("[table04] training/evaluating {label}…");
        let scores = if kind == ModelKind::Gpt4FewShot {
            let sim = zoo.gpt4_predictor();
            eval_text_to_vis(&sim, &examples, &zoo.corpus, cap)
        } else {
            let task = match kind {
                ModelKind::DataVisT5(_, Regime::Mft) => None,
                _ => Some(Task::TextToVis),
            };
            let trained = zoo.train_model_cached(kind, task);
            let predictor = zoo.predictor(kind, trained);
            eval_text_to_vis(&*predictor, &examples, &zoo.corpus, cap)
        };
        let nj = scores.non_join;
        let j = scores.join;
        lint_rows.push((label.clone(), scores.lints));
        r.row(
            &widths,
            &[
                &label,
                &m4(nj.vis_em),
                &m4(nj.axis_em),
                &m4(nj.data_em),
                &m4(nj.em),
                &m4(j.vis_em),
                &m4(j.axis_em),
                &m4(j.data_em),
                &m4(j.em),
            ],
        );
        if let Some((_, p)) = PAPER.iter().find(|(l, _)| *l == label) {
            let fmt = |x: f64| if x.is_nan() { "-".to_string() } else { m4(x) };
            r.row(
                &widths,
                &[
                    "  (paper)",
                    &fmt(p[0]),
                    &fmt(p[1]),
                    &fmt(p[2]),
                    &fmt(p[3]),
                    &fmt(p[4]),
                    &fmt(p[5]),
                    &fmt(p[6]),
                    &fmt(p[7]),
                ],
            );
        }
    }
    r.line("");
    r.line(
        "Generated-query lints (V001 unknown column, V002 aggregate on non-numeric, \
         V003 channel arity, V004 unknown table, V005 group w/o aggregate, V006 aggregate \
         w/o group):",
    );
    for (label, lints) in &lint_rows {
        r.line(format!("  {label:<24} {lints}"));
    }
    r.line("");
    r.line("Determinism audit (D001 hash-order sink, D002 ambient RNG, D003 wall-clock, D004 env, D005 hash-order float fold):");
    match analysis::det::audit_sources(&bench::workspace_root()) {
        Ok(audit) if audit.counts.files > 0 => {
            r.line(format!("  {}", audit.counts));
        }
        _ => {
            // Packaged/relocated runs may not carry the sources; the
            // CI gate (`det_audit`) is where the audit is enforced.
            r.line("  sources unavailable — run `cargo run --release -p bench --bin det_audit`");
        }
    }
    r.line("");
    r.line(
        "Expected shape: Seq2Vis/Transformer get chart types but no EM; retrieval-style \
         systems land mid-range; pre-trained + fine-tuned models lead; joins are much harder \
         than non-joins for every system; DataVisT5 MFT >= its CodeT5+-style SFT base.",
    );
    emit("table04_text_to_vis", &r.render());
}
