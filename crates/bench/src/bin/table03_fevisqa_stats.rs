//! Table III: statistics of the FeVisQA(-like) dataset — databases, QA
//! pairs, distinct DV queries, and counts of the three question types per
//! split.

use std::collections::HashSet;

use bench::{emit, experiment_scale, Report};
use corpus::{Corpus, QuestionType, Split};

fn main() {
    let scale = experiment_scale();
    let corpus = Corpus::generate(&scale.corpus_config());

    let widths = [8usize, 16, 14, 12, 12, 12, 12];
    let mut r = Report::new("Table III — FeVisQA statistics (measured, paper in parens)");
    r.row(
        &widths,
        &[
            "Split",
            "databases",
            "QA pairs",
            "DV query",
            "Type 1",
            "Type 2",
            "Type 3",
        ],
    );
    r.rule(&widths);

    let paper = [
        ("Train", 106, 54406, 9169, 4799, 9166, 31272),
        ("Valid", 16, 9290, 1603, 844, 1579, 5264),
        ("Test", 30, 15609, 2542, 1453, 2501, 9113),
        ("Total", 152, 79305, 13313, 7096, 13246, 45650),
    ];

    for (split, label) in [
        (Some(Split::Train), "Train"),
        (Some(Split::Valid), "Valid"),
        (Some(Split::Test), "Test"),
        (None, "Total"),
    ] {
        let subset: Vec<_> = corpus
            .fevisqa
            .iter()
            .filter(|e| split.is_none_or(|s| corpus.split_of(&e.db_name) == s))
            .collect();
        let dbs: HashSet<&str> = subset.iter().map(|e| e.db_name.as_str()).collect();
        let queries: HashSet<&str> = subset.iter().map(|e| e.query.as_str()).collect();
        let count = |t: QuestionType| subset.iter().filter(|e| e.question_type == t).count();
        let p = paper.iter().find(|(l, ..)| *l == label).unwrap();
        r.row(
            &widths,
            &[
                label,
                &format!("{} ({})", dbs.len(), p.1),
                &format!("{} ({})", subset.len(), p.2),
                &format!("{} ({})", queries.len(), p.3),
                &format!("{} ({})", count(QuestionType::Type1), p.4),
                &format!("{} ({})", count(QuestionType::Type2), p.5),
                &format!("{} ({})", count(QuestionType::Type3), p.6),
            ],
        );
    }
    r.line("");
    r.line(
        "Type-3 (rule-generated data/structure questions) dominates the mix, as in the paper; \
         every Type-3 answer is computed by executing the DV query on the storage engine.",
    );
    emit("table03_fevisqa_stats", &r.render());
}
