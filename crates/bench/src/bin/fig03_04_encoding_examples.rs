//! Figures 3 & 4: DV knowledge encoding and standardized encoding
//! examples — the paper's theme_gallery pie query and the soccer join
//! query, reproduced end to end through the parser and standardizer.

use bench::{emit, Report};
use vql::encode::{encode_schema, encode_table, LinearTable};
use vql::schema::{DbSchema, TableSchema};
use vql::{parse_query, standardize};

fn main() {
    let mut r = Report::new("Figures 3 & 4 — DV knowledge encoding + standardized encoding");

    // ---- Figure 3: the theme_gallery example. ----
    let gallery = DbSchema::new(
        "theme_gallery",
        vec![TableSchema::new(
            "artist",
            vec![
                "age".into(),
                "name".into(),
                "country".into(),
                "year_join".into(),
                "artist_id".into(),
            ],
        )],
    );
    let raw = "Visualize PIE SELECT Country, COUNT(Country) FROM artist GROUP BY Country";
    let parsed = parse_query(raw).expect("parses");
    let standardized = standardize(&parsed, &gallery);
    r.line("Figure 3 — annotator-styled DV query:");
    r.line(format!("  {raw}"));
    r.line("Standardized DV query encoding:");
    r.line(format!("  {standardized}"));
    r.line("Database schema encoding:");
    r.line(format!("  {}", encode_schema(&gallery)));
    let table = LinearTable::new(
        vec!["artist.country".into(), "count ( artist.country )".into()],
        vec![
            vec!["united states".into(), "4".into()],
            vec!["england".into(), "1".into()],
            vec!["france".into(), "1".into()],
            vec!["japan".into(), "2".into()],
        ],
    );
    r.line("Table encoding:");
    r.line(format!("  {}", encode_table(&table)));
    r.line("");

    // ---- Figure 4: the join example with aliases. ----
    let soccer = DbSchema::new(
        "soccer_1",
        vec![
            TableSchema::new(
                "player",
                vec![
                    "player_id".into(),
                    "name".into(),
                    "team_id".into(),
                    "years_played".into(),
                ],
            ),
            TableSchema::new("team", vec!["id".into(), "name".into()]),
        ],
    );
    let raw_join = "VISUALIZE BAR SELECT T1.years_played, COUNT(*) FROM player AS T1 \
                    JOIN team AS T2 ON T1.team_id = T2.id WHERE T2.name = \"Columbus Crew\" \
                    GROUP BY T1.years_played ORDER BY COUNT(*)";
    let parsed_join = parse_query(raw_join).expect("parses");
    let standardized_join = standardize(&parsed_join, &soccer);
    r.line("Figure 4 — DV query with join, aliases, count(*), double quotes, implicit asc:");
    r.line(format!("  {raw_join}"));
    r.line("Standardized (aliases resolved, count(*) specified, quotes normalized, asc explicit):");
    r.line(format!("  {standardized_join}"));
    r.line("");
    r.line("Rules applied (§III-D): (1) T.col qualification and count(*) expansion, (2) spaces");
    r.line("around parentheses + single quotes, (3) explicit asc, (4) alias substitution, (5) lowercase.");
    emit("fig03_04_encoding_examples", &r.render());
}
