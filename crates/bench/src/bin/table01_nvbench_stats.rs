//! Table I: statistics of the NVBench(-like) dataset.
//!
//! Reports instance and database counts per split, for the non-join subset
//! and the full corpus, next to the paper's numbers.

use std::collections::HashSet;

use bench::{emit, experiment_scale, Report};
use corpus::{Corpus, Split};

fn main() {
    let scale = experiment_scale();
    let corpus = Corpus::generate(&scale.corpus_config());

    let widths = [8usize, 22, 14, 22, 14];
    let mut r = Report::new("Table I — NVBench statistics (synthetic corpus vs paper)");
    r.row(
        &widths,
        &[
            "Split",
            "instances w/o join",
            "instances",
            "databases w/o join",
            "databases",
        ],
    );
    r.rule(&widths);

    let paper = [
        ("Train", 10564, 16780, 98, 106),
        ("Valid", 2539, 3505, 15, 16),
        ("Test", 2661, 5343, 27, 30),
        ("Total", 15764, 25628, 140, 152),
    ];

    let mut totals = (0usize, 0usize);
    let mut total_dbs: (HashSet<&str>, HashSet<&str>) = (HashSet::new(), HashSet::new());
    for (split, label) in [
        (Some(Split::Train), "Train"),
        (Some(Split::Valid), "Valid"),
        (Some(Split::Test), "Test"),
        (None, "Total"),
    ] {
        let in_split = |db: &str| split.is_none_or(|s| corpus.split_of(db) == s);
        let non_join: Vec<_> = corpus
            .nvbench
            .iter()
            .filter(|e| !e.has_join && in_split(&e.db_name))
            .collect();
        let all: Vec<_> = corpus
            .nvbench
            .iter()
            .filter(|e| in_split(&e.db_name))
            .collect();
        let dbs_nj: HashSet<&str> = non_join.iter().map(|e| e.db_name.as_str()).collect();
        let dbs_all: HashSet<&str> = all.iter().map(|e| e.db_name.as_str()).collect();
        if split.is_some() {
            totals.0 += non_join.len();
            totals.1 += all.len();
            total_dbs.0.extend(dbs_nj.iter());
            total_dbs.1.extend(dbs_all.iter());
        }
        let p = paper.iter().find(|(l, ..)| *l == label).unwrap();
        r.row(
            &widths,
            &[
                label,
                &format!("{} (paper {})", non_join.len(), p.1),
                &format!("{} ({})", all.len(), p.2),
                &format!("{} ({})", dbs_nj.len(), p.3),
                &format!("{} ({})", dbs_all.len(), p.4),
            ],
        );
    }
    r.line("");
    r.line(format!(
        "Join share: {:.1}% of instances use a join (paper: {:.1}%).",
        100.0 * (1.0 - totals.0 as f64 / totals.1 as f64),
        100.0 * (1.0 - 15764.0 / 25628.0)
    ));
    r.line(
        "Substitution note: the synthetic corpus scales Spider's 152 databases down \
         proportionally; the cross-domain 70/10/20 split and join/non-join structure match §IV-C.",
    );
    emit("table01_nvbench_stats", &r.render());
}
