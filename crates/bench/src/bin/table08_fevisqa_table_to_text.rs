//! Table VIII: FeVisQA (BLEU-1, ROUGE-1, ROUGE-L, METEOR) and
//! table-to-text (BLEU-4, ROUGE-1, ROUGE-L, METEOR) for every comparison
//! system.

use bench::{emit, experiment_scale, m4, Report};
use corpus::Split;
use datavist5::config::Size;
use datavist5::data::Task;
use datavist5::eval::eval_text_gen;
use datavist5::zoo::{ModelKind, Regime, Zoo};

/// Paper values: (fevisqa [b1, r1, rl, meteor], table-to-text [b4, r1, rl, meteor]).
const PAPER: &[(&str, [f64; 4], [f64; 4])] = &[
    (
        "Seq2Vis",
        [0.3642, 0.3755, 0.3683, 0.1955],
        [0.1575, 0.4539, 0.3995, 0.3324],
    ),
    (
        "Transformer",
        [0.2868, 0.2984, 0.2903, 0.1556],
        [0.0875, 0.3838, 0.3152, 0.2642],
    ),
    (
        "BART",
        [0.7379, 0.7391, 0.7290, 0.4376],
        [0.3824, 0.6314, 0.5549, 0.5845],
    ),
    (
        "CodeT5+ (220M) +SFT",
        [0.6813, 0.6801, 0.6694, 0.4086],
        [0.3814, 0.6183, 0.5450, 0.5844],
    ),
    (
        "CodeT5+ (770M) +SFT",
        [0.7039, 0.7032, 0.6930, 0.4211],
        [0.3848, 0.6284, 0.5511, 0.5946],
    ),
    (
        "GPT-4 (few-shot)",
        [0.1148, 0.1731, 0.1599, 0.2312],
        [0.1565, 0.4277, 0.3281, 0.4146],
    ),
    (
        "LLama2-7b +LoRA",
        [0.4214, 0.4336, 0.4223, 0.2582],
        [0.2010, 0.4988, 0.4523, 0.3923],
    ),
    (
        "Mistral-7b +LoRA",
        [0.7404, 0.7671, 0.7574, 0.4251],
        [0.2003, 0.5002, 0.4538, 0.3948],
    ),
    (
        "DataVisT5 (220M) +MFT",
        [0.7164, 0.7158, 0.7051, 0.4273],
        [0.3822, 0.6259, 0.5478, 0.5926],
    ),
    (
        "DataVisT5 (770M) +MFT",
        [0.7893, 0.7895, 0.7788, 0.4671],
        [0.4199, 0.6520, 0.5775, 0.6227],
    ),
];

fn main() {
    let scale = experiment_scale();
    let zoo = Zoo::new(scale);
    let qa_examples = zoo.datasets.of(Task::FeVisQa, Split::Test);
    let tt_examples = zoo.datasets.of(Task::TableToText, Split::Test);
    let cap = scale.eval_cap();

    let systems: Vec<ModelKind> = vec![
        ModelKind::Seq2Vis,
        ModelKind::Transformer,
        ModelKind::Bart,
        ModelKind::CodeT5Sft(Size::Base),
        ModelKind::CodeT5Sft(Size::Large),
        ModelKind::Gpt4FewShot,
        ModelKind::Llama2Lora,
        ModelKind::Mistral7bLora,
        ModelKind::DataVisT5(Size::Base, Regime::Mft),
        ModelKind::DataVisT5(Size::Large, Regime::Mft),
    ];

    let widths = [24usize, 9, 9, 9, 9, 9, 9, 9, 9];
    let mut r =
        Report::new("Table VIII — FeVisQA and table-to-text (measured; paper below each row)");
    r.line(format!(
        "FeVisQA test: {} | table-to-text test: {} | cap: {cap}",
        qa_examples.len(),
        tt_examples.len()
    ));
    r.row(
        &widths,
        &[
            "Model", "qa B-1", "qa R-1", "qa R-L", "qa MET", "tt B-4", "tt R-1", "tt R-L", "tt MET",
        ],
    );
    r.rule(&widths);

    for kind in systems {
        let label = kind.label();
        eprintln!("[table08] training/evaluating {label}…");
        let (qa, tt) = if kind == ModelKind::Gpt4FewShot {
            let sim = zoo.gpt4_predictor();
            (
                eval_text_gen(&sim, &qa_examples, cap),
                eval_text_gen(&sim, &tt_examples, cap),
            )
        } else if matches!(kind, ModelKind::DataVisT5(_, Regime::Mft)) {
            let trained = zoo.train_model_cached(kind, None);
            let predictor = zoo.predictor(kind, trained);
            (
                eval_text_gen(&*predictor, &qa_examples, cap),
                eval_text_gen(&*predictor, &tt_examples, cap),
            )
        } else {
            let qa_model = zoo.train_model_cached(kind, Some(Task::FeVisQa));
            let qa_pred = zoo.predictor(kind, qa_model);
            let qa_scores = eval_text_gen(&*qa_pred, &qa_examples, cap);
            let tt_model = zoo.train_model_cached(kind, Some(Task::TableToText));
            let tt_pred = zoo.predictor(kind, tt_model);
            let tt_scores = eval_text_gen(&*tt_pred, &tt_examples, cap);
            (qa_scores, tt_scores)
        };
        r.row(
            &widths,
            &[
                &label,
                &m4(qa.bleu1),
                &m4(qa.rouge1),
                &m4(qa.rouge_l),
                &m4(qa.meteor),
                &m4(tt.bleu4),
                &m4(tt.rouge1),
                &m4(tt.rouge_l),
                &m4(tt.meteor),
            ],
        );
        if let Some((_, pq, pt)) = PAPER.iter().find(|(l, ..)| *l == label) {
            let cells: Vec<String> = pq.iter().chain(pt.iter()).map(|&x| m4(x)).collect();
            let mut row: Vec<&str> = vec!["  (paper)"];
            row.extend(cells.iter().map(|s| s.as_str()));
            r.row(&widths, &row);
        }
    }
    r.line("");
    r.line(
        "Expected shape: zero-shot retrieval (GPT-4 sim) collapses on FeVisQA's exact numeric \
         answers; fine-tuned pretrained models dominate; DataVisT5 MFT leads or ties.",
    );
    emit("table08_fevisqa_table_to_text", &r.render());
}
