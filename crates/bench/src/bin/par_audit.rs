//! Parallel-safety auditor CLI: the workspace-wide concurrency gate.
//!
//! Two layers, mirroring `analysis::par`:
//!
//! 1. **Source sweep** — lints every `crates/*/src/**/*.rs` file for
//!    unsynchronized shared statics (P001), spawn closures capturing
//!    interior-mutable state (P002), `Ordering::Relaxed` on data-guarding
//!    atomics (P003), lock-order cycles across the whole workspace
//!    (P004), float accumulation inside spawned closures (P005), and
//!    blocking primitives in the tape hot path (P006). `// par-ok:
//!    <reason>` annotations allowlist audited sites; a reason-less
//!    annotation is itself a finding (P000) and a stale one is P009.
//! 2. **Schedule certification** — every `ReductionSchedule` the kernel
//!    dispatch layer declares (all matmul orientations, a sweep of
//!    launch shapes × worker counts) is replayed symbolically against
//!    the canonical reduction orders in `analysis::order`. A schedule
//!    that is not bit-equivalent to the sequential fold is P010.
//!
//! Writes `BENCH_par_audit.json` at the repo root and exits nonzero on
//! any unsuppressed finding — `ci.sh` runs this as a gate.
//!
//! ```text
//! cargo run --release -p bench --bin par_audit [-- --out PATH]
//! ```

use analysis::par::{audit_par_sources, certify_declared, ParCounts};
use bench::workspace_root;

/// Launch shapes certified per worker count: the degenerate scalar case,
/// odd non-aligned shapes, a blocked-boundary shape, and the presets'
/// order of magnitude.
const SHAPES: &[(usize, usize, usize)] = &[
    (1, 1, 1),
    (3, 63, 5),
    (7, 64, 129),
    (65, 130, 257),
    (64, 512, 512),
];

const WORKER_COUNTS: &[usize] = &[1, 2, 4, 8];

fn main() {
    let out_path = bench::parse_out_arg("par_audit");

    let root = workspace_root();
    let audit = audit_par_sources(&root).expect("walk workspace sources");
    let mut counts: ParCounts = audit.counts;

    println!("== parallel-safety audit: source sweep ==");
    for finding in &audit.findings {
        println!("{finding}");
    }
    for finding in &audit.allowed {
        println!("{finding}");
    }
    if audit.findings.is_empty() {
        println!(
            "source sweep clean: {} files, {} par-ok allowlisted",
            counts.files, counts.suppressed
        );
    }

    println!("\n== parallel-safety audit: schedule certification ==");
    let results = certify_declared(SHAPES, WORKER_COUNTS);
    let mut certified = 0usize;
    let mut rejections: Vec<String> = Vec::new();
    for result in &results {
        match result {
            Ok(_) => certified += 1,
            Err(rej) => {
                println!("{rej}");
                counts.record_schedule("P010");
                rejections.push(rej.to_string());
            }
        }
    }
    println!(
        "{certified}/{} declared schedules certified bit-equivalent to sequential \
         ({} shapes x {} worker counts x 3 orientations)",
        results.len(),
        SHAPES.len(),
        WORKER_COUNTS.len()
    );

    println!("\npar_audit: {counts}");

    let findings_json: Vec<serde_json::Value> = audit
        .findings
        .iter()
        .map(|f| {
            serde_json::json!({
                "code": f.code,
                "file": f.file.clone(),
                "line": f.line,
                "message": f.message.clone(),
            })
        })
        .collect();
    let allowed_json: Vec<serde_json::Value> = audit
        .allowed
        .iter()
        .map(|f| {
            serde_json::json!({
                "code": f.code,
                "file": f.file.clone(),
                "line": f.line,
                "reason": f.suppressed.clone().unwrap_or_default(),
            })
        })
        .collect();
    let perf = bench::perf::PerfBlock::new(
        bench::perf::run_header("par_audit", None),
        vec![
            bench::perf::sample(
                "audit/par/files",
                bench::perf::Unit::Count,
                counts.files as f64,
            ),
            bench::perf::sample(
                "audit/par/allowed",
                bench::perf::Unit::Count,
                counts.suppressed as f64,
            ),
            bench::perf::sample(
                "audit/par/schedules_certified",
                bench::perf::Unit::Count,
                certified as f64,
            ),
        ],
    );
    let report = serde_json::json!({
        "bench": "par_audit",
        "files": counts.files,
        "unsuppressed": counts.unsuppressed(),
        "allowed": counts.suppressed,
        "counts": {
            "P000": counts.p000,
            "P001": counts.p001,
            "P002": counts.p002,
            "P003": counts.p003,
            "P004": counts.p004,
            "P005": counts.p005,
            "P006": counts.p006,
            "P009": counts.p009,
            "P010": counts.p010,
        },
        "findings": findings_json,
        "allowlist": allowed_json,
        "schedules": {
            "declared": results.len(),
            "certified": certified,
            "rejections": rejections,
        },
        "clean": counts.unsuppressed() == 0,
        "perf": perf.to_json(),
    });
    let rendered = serde_json::to_string_pretty(&report).expect("render report");
    std::fs::write(&out_path, rendered + "\n").expect("write BENCH_par_audit.json");
    println!("wrote {}", out_path.display());

    if counts.unsuppressed() > 0 {
        eprintln!(
            "par_audit: {} unsuppressed finding(s) — fix them or annotate audited \
             sites with `// par-ok: <reason>`",
            counts.unsuppressed()
        );
        std::process::exit(1);
    }
}
