//! Calibration probe: trains one CodeT5+-style SFT model on text-to-vis at
//! the experiment scale, prints timing, sample predictions, and EM — used
//! to sanity-check that the scale presets actually learn before running
//! the full table fleet.

use std::time::Instant;

use bench::{emit, experiment_scale, m4, Report};
use corpus::Split;
use datavist5::config::Size;
use datavist5::data::Task;
use datavist5::eval::eval_text_to_vis;
use datavist5::zoo::{ModelKind, Zoo};

fn main() {
    let scale = experiment_scale();
    let t0 = Instant::now();
    let zoo = Zoo::new(scale);
    eprintln!(
        "[probe] corpus: {} nvbench examples, vocab {}, built in {:.1?}",
        zoo.corpus.nvbench.len(),
        zoo.tok.vocab().len(),
        t0.elapsed()
    );

    let t1 = Instant::now();
    let kind = ModelKind::CodeT5Sft(Size::Base);
    let trained = zoo.train_model_cached(kind, Some(Task::TextToVis));
    eprintln!("[probe] pretrain+finetune in {:.1?}", t1.elapsed());

    let predictor = zoo.predictor(kind, trained);
    let examples = zoo.datasets.of(Task::TextToVis, Split::Test);
    let t2 = Instant::now();
    let scores = eval_text_to_vis(&*predictor, &examples, &zoo.corpus, scale.eval_cap());
    eprintln!(
        "[probe] eval of {} + {} examples in {:.1?}",
        scores.non_join.n,
        scores.join.n,
        t2.elapsed()
    );

    let mut r = Report::new("Probe — CodeT5+ (base) SFT on text-to-vis");
    r.line(format!(
        "non-join: vis {} axis {} data {} em {} (n={})",
        m4(scores.non_join.vis_em),
        m4(scores.non_join.axis_em),
        m4(scores.non_join.data_em),
        m4(scores.non_join.em),
        scores.non_join.n
    ));
    r.line(format!(
        "join:     vis {} axis {} data {} em {} (n={})",
        m4(scores.join.vis_em),
        m4(scores.join.axis_em),
        m4(scores.join.data_em),
        m4(scores.join.em),
        scores.join.n
    ));
    r.line("sample predictions:");
    for e in examples.iter().take(4) {
        r.line(format!("  gold: {}", e.gold_query.as_deref().unwrap_or("")));
        r.line(format!("  pred: {}", predictor.predict(e)));
    }
    emit("probe_learning", &r.render());
}
