//! Design-choice ablation (beyond the paper's Table XII): decoding
//! strategy. The same fine-tuned DataVisT5 checkpoint is decoded with
//! greedy search, beam search (width 4), and the ncNet-style grammar
//! mask, isolating how much of text-to-vis quality comes from decode-time
//! structure vs learned weights.

use bench::{emit, experiment_scale, m4, Report};
use corpus::Split;
use datavist5::config::Size;
use datavist5::data::{strip_prefix, Task, TaskExample};
use datavist5::eval::eval_text_to_vis;
use datavist5::zoo::{ModelKind, Predictor, Regime, Trained, Zoo};
use nn::decode::beam_decode;
use nn::t5::DecodeState;
use tokenizer::special;

/// Beam-search predictor over a trained T5.
struct BeamPredictor<'z> {
    zoo: &'z Zoo,
    trained: Trained,
    width: usize,
}

impl Predictor for BeamPredictor<'_> {
    fn predict(&self, example: &TaskExample) -> String {
        let Trained::T5 { model, ps } = &self.trained else {
            return String::new();
        };
        let max_len = self.zoo.scale.max_len();
        let mut ids = self.zoo.tok.encode_with_eos(&example.input);
        if ids.len() > max_len {
            ids.truncate(max_len - 1);
            ids.push(special::EOS);
        }
        let state = DecodeState::new(model, ps, &ids);
        let out = beam_decode(state, special::EOS, self.zoo.scale.max_out(), self.width);
        strip_prefix(example.task, &self.zoo.tok.decode(&out))
    }
}

fn main() {
    let scale = experiment_scale();
    let zoo = Zoo::new(scale);
    let examples = zoo.datasets.of(Task::TextToVis, Split::Test);
    let cap = scale.eval_cap().min(40);
    let kind = ModelKind::DataVisT5(Size::Base, Regime::Mft);

    let widths = [22usize, 9, 9, 9, 9];
    let mut r = Report::new("Ablation — decoding strategy on one DataVisT5 (base) MFT checkpoint");
    r.row(
        &widths,
        &["Strategy", "nj Vis", "nj Axis", "nj Data", "nj EM"],
    );
    r.rule(&widths);

    // Greedy.
    eprintln!("[ablation] greedy…");
    let trained = zoo.train_model_cached(kind, None);
    let greedy = zoo.predictor(kind, trained);
    let s = eval_text_to_vis(&*greedy, &examples, &zoo.corpus, cap).non_join;
    r.row(
        &widths,
        &[
            "greedy",
            &m4(s.vis_em),
            &m4(s.axis_em),
            &m4(s.data_em),
            &m4(s.em),
        ],
    );

    // Beam 4.
    eprintln!("[ablation] beam-4…");
    let trained = zoo.train_model_cached(kind, None);
    let beam = BeamPredictor {
        zoo: &zoo,
        trained,
        width: 4,
    };
    let s = eval_text_to_vis(&beam, &examples, &zoo.corpus, cap).non_join;
    r.row(
        &widths,
        &[
            "beam-4",
            &m4(s.vis_em),
            &m4(s.axis_em),
            &m4(s.data_em),
            &m4(s.em),
        ],
    );

    // Grammar-constrained (the ncNet trick on our weights).
    eprintln!("[ablation] grammar-constrained…");
    let trained = zoo.train_model_cached(kind, None);
    let constrained = zoo.predictor(ModelKind::NcNet, trained);
    let s = eval_text_to_vis(&*constrained, &examples, &zoo.corpus, cap).non_join;
    r.row(
        &widths,
        &[
            "grammar-masked",
            &m4(s.vis_em),
            &m4(s.axis_em),
            &m4(s.data_em),
            &m4(s.em),
        ],
    );

    r.line("");
    r.line(
        "Reading: beam usually edges out greedy on EM; the grammar mask guarantees \
         syntactic validity (Vis EM) but cannot repair semantic grounding.",
    );
    emit("ablation_decoding", &r.render());
}
