//! Decode throughput: the sequential KV-cached decoder vs the batched
//! inference engine, on randomly initialized weights (throughput does not
//! depend on what the weights say, only on their shapes).
//!
//! EOS is placed outside the vocabulary so every request decodes the full
//! `--max-out` tokens — both paths do identical work and the tokens/sec
//! ratio is a pure engine comparison. The batched outputs are asserted
//! token-identical to the sequential ones before any number is reported.
//!
//! Writes `BENCH_decode.json` at the repo root:
//! `{preset, requests, batch, max_out, seq_tokens_per_sec,
//!   batched_tokens_per_sec, speedup, identical}`.
//!
//! Usage: `decode_bench [--preset base|large] [--requests N] [--batch N]
//! [--max-out N] [--out PATH]`

use std::time::Instant;

use nn::decode::{batched_greedy_decode, greedy_decode};
use nn::param::ParamSet;
use nn::t5::{DecodeState, T5Config, T5Model};
use tensor::XorShift;

const VOCAB: usize = 512;

fn main() {
    let mut preset = "base".to_string();
    let mut requests = 8usize;
    let mut batch = 8usize;
    let mut max_out = 32usize;
    let mut out_path = "BENCH_decode.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match a.as_str() {
            "--preset" => preset = val("--preset"),
            "--requests" => requests = val("--requests").parse().expect("--requests"),
            "--batch" => batch = val("--batch").parse().expect("--batch"),
            "--max-out" => max_out = val("--max-out").parse().expect("--max-out"),
            "--out" => out_path = val("--out"),
            other => panic!("unknown argument {other}"),
        }
    }

    let cfg = match preset.as_str() {
        "base" => T5Config::base(VOCAB),
        "large" => T5Config::large(VOCAB),
        other => panic!("unknown preset {other} (use base|large)"),
    };
    let mut ps = ParamSet::new();
    let mut rng = XorShift::new(0xdec0de);
    let model = T5Model::new(&mut ps, "bench", cfg, &mut rng);

    // Ragged sources, lengths 8..=24; EOS outside the vocabulary so every
    // request decodes exactly max_out tokens.
    let eos = VOCAB as u32;
    let srcs: Vec<Vec<u32>> = (0..requests)
        .map(|_| {
            let len = 8 + (rng.next_u64() % 17) as usize;
            (0..len)
                .map(|_| (rng.next_u64() % VOCAB as u64) as u32)
                .collect()
        })
        .collect();

    eprintln!("[decode_bench] preset={preset} requests={requests} batch={batch} max_out={max_out}");

    let t0 = Instant::now();
    let seq: Vec<Vec<u32>> = srcs
        .iter()
        .map(|src| {
            let mut state = DecodeState::new(&model, &ps, src);
            greedy_decode(&mut state, eos, max_out)
        })
        .collect();
    let seq_secs = t0.elapsed().as_secs_f64();
    let seq_tokens: usize = seq.iter().map(Vec::len).sum();

    let t1 = Instant::now();
    let batched = batched_greedy_decode(&model, &ps, &srcs, eos, max_out, batch);
    let batched_secs = t1.elapsed().as_secs_f64();
    let batched_tokens: usize = batched.iter().map(Vec::len).sum();

    let identical = seq == batched;
    assert!(identical, "batched outputs diverged from sequential");
    assert_eq!(seq_tokens, requests * max_out, "unexpected early EOS");

    let seq_tps = seq_tokens as f64 / seq_secs;
    let batched_tps = batched_tokens as f64 / batched_secs;
    let speedup = batched_tps / seq_tps;

    let json = serde_json::json!({
        "preset": preset,
        "requests": requests,
        "batch": batch,
        "max_out": max_out,
        "seq_tokens_per_sec": seq_tps,
        "batched_tokens_per_sec": batched_tps,
        "speedup": speedup,
        "identical": identical,
    });
    let rendered = serde_json::to_string_pretty(&json).expect("serialize");
    println!("{rendered}");
    std::fs::write(&out_path, rendered + "\n").expect("write BENCH_decode.json");
    eprintln!(
        "[decode_bench] sequential {seq_tps:.0} tok/s | batched {batched_tps:.0} tok/s | \
         speedup {speedup:.2}x -> {out_path}"
    );
}
