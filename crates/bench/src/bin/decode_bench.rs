//! Decode throughput: the sequential KV-cached decoder vs the batched
//! inference engine, on randomly initialized weights (throughput does not
//! depend on what the weights say, only on their shapes).
//!
//! EOS is placed outside the vocabulary so every request decodes the full
//! `--max-out` tokens — both paths do identical work and the tokens/sec
//! ratio is a pure engine comparison. The batched outputs are asserted
//! token-identical to the sequential ones before any number is reported.
//!
//! The batched run is then swept across `DATAVIST5_THREADS` ∈ {1, 2, 4}:
//! the fork-join kernels run under certified M-split schedules, so every
//! thread count must produce *bitwise-identical* tokens — the sweep
//! asserts that and records per-count throughput. On a single-core host
//! the speedup is honestly ~1.0×; `hardware_threads` in the report says
//! how many cores the numbers were measured on.
//!
//! Writes `BENCH_decode.json` at the repo root:
//! `{preset, requests, batch, max_out, hardware_threads,
//!   seq_tokens_per_sec, batched_tokens_per_sec, speedup, identical,
//!   thread_sweep: [{threads, tokens_per_sec, identical_to_single}]}`.
//!
//! Usage: `decode_bench [--preset base|large] [--requests N] [--batch N]
//! [--max-out N] [--out PATH]`

use std::time::Instant;

use bench::perf::{sample, PerfBlock, Unit};
use nn::decode::{batched_greedy_decode, greedy_decode};
use nn::param::ParamSet;
use nn::t5::{DecodeState, T5Config, T5Model};
use tensor::XorShift;

const VOCAB: usize = 512;

fn main() {
    let mut preset = "base".to_string();
    let mut requests = 8usize;
    let mut batch = 8usize;
    let mut max_out = 32usize;
    let mut out_path = bench::default_bench_out("decode");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match a.as_str() {
            "--preset" => preset = val("--preset"),
            "--requests" => requests = val("--requests").parse().expect("--requests"),
            "--batch" => batch = val("--batch").parse().expect("--batch"),
            "--max-out" => max_out = val("--max-out").parse().expect("--max-out"),
            "--out" => out_path = val("--out").into(),
            other => panic!("unknown argument {other}"),
        }
    }

    let cfg = match preset.as_str() {
        "base" => T5Config::base(VOCAB),
        "large" => T5Config::large(VOCAB),
        other => panic!("unknown preset {other} (use base|large)"),
    };
    let mut ps = ParamSet::new();
    let mut rng = XorShift::new(0xdec0de);
    let model = T5Model::new(&mut ps, "bench", cfg, &mut rng);

    // Ragged sources, lengths 8..=24, from the shared workload-trace
    // module (continuing the model-init RNG stream); EOS outside the
    // vocabulary so every request decodes exactly max_out tokens.
    let eos = VOCAB as u32;
    let srcs = bench::trace::ragged_sources_with(&mut rng, requests, VOCAB, 8, 24);

    let hardware_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!(
        "[decode_bench] preset={preset} requests={requests} batch={batch} max_out={max_out} \
         hardware_threads={hardware_threads}"
    );

    tensor::par::set_threads(1);
    let t0 = Instant::now();
    let seq: Vec<Vec<u32>> = srcs
        .iter()
        .map(|src| {
            let mut state = DecodeState::new(&model, &ps, src);
            greedy_decode(&mut state, eos, max_out)
        })
        .collect();
    let seq_secs = t0.elapsed().as_secs_f64();
    let seq_tokens: usize = seq.iter().map(Vec::len).sum();

    // Batched engine across the thread sweep. The single-thread run is the
    // reference; every other count must match it token for token.
    let mut sweep: Vec<serde_json::Value> = Vec::new();
    let mut single: Option<Vec<Vec<u32>>> = None;
    let batched_tps_at = |threads: usize, single: &mut Option<Vec<Vec<u32>>>| {
        tensor::par::set_threads(threads);
        let t = Instant::now();
        let out = batched_greedy_decode(&model, &ps, &srcs, eos, max_out, batch);
        let secs = t.elapsed().as_secs_f64();
        let tokens: usize = out.iter().map(Vec::len).sum();
        let identical = match single {
            None => {
                *single = Some(out);
                true
            }
            Some(reference) => *reference == out,
        };
        assert!(
            identical,
            "batched decode at {threads} thread(s) diverged from the 1-thread run — \
             schedule certification is supposed to make this impossible"
        );
        tokens as f64 / secs
    };
    let mut tps_by_threads = Vec::new();
    for threads in [1usize, 2, 4] {
        let tps = batched_tps_at(threads, &mut single);
        tps_by_threads.push((threads, tps));
        sweep.push(serde_json::json!({
            "threads": threads,
            "tokens_per_sec": tps,
            "identical_to_single": true,
        }));
        eprintln!("[decode_bench] batched @ {threads} thread(s): {tps:.0} tok/s (bit-identical)");
    }
    tensor::par::set_threads(1);

    let batched = single.expect("sweep ran");
    let identical = seq == batched;
    assert!(identical, "batched outputs diverged from sequential");
    assert_eq!(seq_tokens, requests * max_out, "unexpected early EOS");

    let seq_tps = seq_tokens as f64 / seq_secs;
    let batched_tps = tps_by_threads[0].1;
    let speedup = batched_tps / seq_tps;
    let tps_at_4 = tps_by_threads
        .iter()
        .find(|(t, _)| *t == 4)
        .map(|(_, tps)| *tps)
        .unwrap_or(batched_tps);

    // The thread sweep must be monotone-or-flagged: `worst_step_ratio`
    // is the smallest tokens/sec ratio between consecutive thread counts
    // (1.0 = perfectly monotone, <1.0 = some step loses throughput). The
    // perf gate tracks it, so a parallelism collapse like the old 6.8×
    // 4-thread regression shows up as a T001 instead of rotting silently.
    let worst_step_ratio = tps_by_threads
        .windows(2)
        .map(|w| w[1].1 / w[0].1)
        .fold(1.0_f64, f64::min);
    let mut samples = vec![
        sample("decode/seq/tokens_per_sec", Unit::TokensPerSec, seq_tps),
        sample(
            "decode/batched/tokens_per_sec",
            Unit::TokensPerSec,
            batched_tps,
        ),
        sample("decode/batched/speedup", Unit::Ratio, speedup),
        sample(
            "decode/sweep/worst_step_ratio",
            Unit::Ratio,
            worst_step_ratio,
        ),
    ];
    for (threads, tps) in &tps_by_threads {
        if *threads > 1 {
            samples.push(sample(
                &format!("decode/batched/t{threads}/tokens_per_sec"),
                Unit::TokensPerSec,
                *tps,
            ));
        }
    }
    let perf = PerfBlock::new(bench::perf::run_header("decode", Some(&preset)), samples);

    // Legacy ad-hoc fields are kept alongside the canonical `perf` block
    // for one release; readers should migrate to `perf.samples`.
    let json = serde_json::json!({
        "preset": preset,
        "requests": requests,
        "batch": batch,
        "max_out": max_out,
        "hardware_threads": hardware_threads,
        "seq_tokens_per_sec": seq_tps,
        "batched_tokens_per_sec": batched_tps,
        "batched_tokens_per_sec_4_threads": tps_at_4,
        "speedup": speedup,
        "identical": identical,
        "thread_sweep": sweep,
        "perf": perf.to_json(),
    });
    let rendered = serde_json::to_string_pretty(&json).expect("serialize");
    println!("{rendered}");
    std::fs::write(&out_path, rendered + "\n").expect("write BENCH_decode.json");
    eprintln!(
        "[decode_bench] sequential {seq_tps:.0} tok/s | batched {batched_tps:.0} tok/s | \
         speedup {speedup:.2}x -> {}",
        out_path.display()
    );
}
