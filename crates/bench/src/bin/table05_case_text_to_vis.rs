//! Table V + Figure 6: text-to-vis case study — every model's generated
//! DV query for one held-out example, with rendered (ASCII) charts or the
//! "No image due to errors in the DV query" note.

use bench::{emit, experiment_scale, Report};
use corpus::Split;
use datavist5::case_study::build_case;
use datavist5::config::Size;
use datavist5::data::Task;
use datavist5::zoo::{ModelKind, Regime, Zoo};

fn main() {
    let scale = experiment_scale();
    let zoo = Zoo::new(scale);
    let examples = zoo.datasets.of(Task::TextToVis, Split::Test);
    // Pick a non-trivial example: aggregated, grouped, non-join (the
    // paper's rooms/decor scatter is of this shape).
    let example = examples
        .iter()
        .find(|e| {
            let q = e.gold_query.as_deref().unwrap_or("");
            !e.has_join && q.contains("avg (") && q.contains("group by")
        })
        .or_else(|| examples.first())
        .expect("no test examples");

    let systems = vec![
        ModelKind::Seq2Vis,
        ModelKind::Transformer,
        ModelKind::NcNet,
        ModelKind::RgVisNet,
        ModelKind::CodeT5Sft(Size::Base),
        ModelKind::DataVisT5(Size::Large, Regime::Mft),
    ];
    let mut predictions = Vec::new();
    for kind in systems {
        eprintln!("[table05] {}…", kind.label());
        let task = match kind {
            ModelKind::DataVisT5(_, Regime::Mft) => None,
            _ => Some(Task::TextToVis),
        };
        let trained = zoo.train_model_cached(kind, task);
        let predictor = zoo.predictor(kind, trained);
        predictions.push((kind.label(), predictor.predict(example)));
    }

    let case = build_case(example, &zoo.corpus, &predictions);
    let mut r = Report::new("Table V / Figure 6 — text-to-vis case study");
    r.line(format!("database: {}", example.db_name));
    r.line(case.render());
    r.line(
        "Paper analogue: Seq2Vis/Transformer drift structurally, constrained and retrieval \
         models come closer, and the MFT DataVisT5 matches the gold query.",
    );
    emit("table05_case_text_to_vis", &r.render());
}
