//! Graph Doctor CLI: static diagnosis of the model presets' autodiff tapes.
//!
//! For each size tier (`base`, `large`) at the `DATAVIST5_SCALE` scale,
//! this builds the T5 model, records one training tape and one eval tape
//! on a synthetic example, and runs every analyzer pass — shape inference,
//! gradient-flow lints, and a full numeric scan of values and gradients.
//! A healthy checkout prints a clean report for every preset; any error
//! diagnostic makes the process exit nonzero.
//!
//! ```text
//! cargo run --release --bin graph_doctor
//! ```

use analysis::{diagnose_full, TapeMode};
use datavist5::config::{Scale, Size};
use nn::param::ParamSet;
use nn::t5::{T5Model, DECODER_START};
use tensor::{Graph, XorShift};

fn main() {
    let scale = Scale::from_env();
    let vocab = 64usize;
    let src: Vec<u32> = (5u32..21).collect();
    let tgt: Vec<u32> = (7u32..19).chain([1]).collect();

    let mut errors = 0usize;
    let mut warnings = 0usize;
    for (size, preset) in [(Size::Base, "base"), (Size::Large, "large")] {
        let cfg = scale.t5_config(size, vocab);
        let mut ps = ParamSet::new();
        let mut rng = XorShift::new(0xd0c + preset.len() as u64);
        let model = T5Model::new(&mut ps, preset, cfg, &mut rng);

        // Training tape: teacher-forced loss plus a backward pass, so the
        // numeric scan covers gradients too.
        let mut g = Graph::with_seed(1);
        let loss = model.loss(&mut g, &ps, &src, &tgt, 0.1);
        g.backward(loss);
        let train_report = diagnose_full(&g, loss, TapeMode::Train);
        println!(
            "== preset {preset} ({}) train tape: {} ops, {} params ==",
            size.label(),
            g.len(),
            ps.len()
        );
        println!("{train_report}");
        errors += train_report.error_count();
        warnings += train_report.warning_count();

        // Eval tape: same computation with dropout disabled — checked under
        // eval-mode semantics (any recorded dropout op would be flagged).
        let mut ge = Graph::with_seed(2);
        let src_ids: Vec<usize> = src.iter().map(|&t| t as usize).collect();
        let mut dec_input: Vec<usize> = vec![DECODER_START as usize];
        dec_input.extend(tgt[..tgt.len() - 1].iter().map(|&t| t as usize));
        let targets: Vec<usize> = tgt.iter().map(|&t| t as usize).collect();
        let enc_out = model.encode(&mut ge, &ps, &src_ids, false);
        let dec_out = model.decode_all(&mut ge, &ps, enc_out, &dec_input, false);
        let logits = model.logits(&mut ge, &ps, dec_out);
        let eval_loss = ge.cross_entropy(logits, &targets, 0.0);
        let eval_report = diagnose_full(&ge, eval_loss, TapeMode::Eval);
        println!(
            "== preset {preset} ({}) eval tape: {} ops ==",
            size.label(),
            ge.len()
        );
        println!("{eval_report}");
        errors += eval_report.error_count();
        warnings += eval_report.warning_count();
    }

    println!("graph_doctor total: {errors} error(s), {warnings} warning(s)");
    if errors > 0 {
        std::process::exit(1);
    }
}
