//! Tables IX–X + Figure 8: FeVisQA case study — the DV knowledge (query,
//! table, schema) for one chart, then every model's answers to its
//! questions.

use bench::{emit, experiment_scale, Report};
use corpus::Split;
use datavist5::case_study::{is_correct, render_chart};
use datavist5::config::Size;
use datavist5::data::{strip_prefix, Task};
use datavist5::zoo::{ModelKind, Regime, Zoo};

fn main() {
    let scale = experiment_scale();
    let zoo = Zoo::new(scale);
    let examples = zoo.datasets.of(Task::FeVisQa, Split::Test);
    // Group questions by (db, query): take the query with the most
    // questions, like the paper's film chart with four questions.
    let anchor = examples
        .iter()
        .max_by_key(|e| {
            examples
                .iter()
                .filter(|o| o.db_name == e.db_name && same_query(o, e))
                .count()
        })
        .expect("no test examples");
    let group: Vec<_> = examples
        .iter()
        .filter(|o| o.db_name == anchor.db_name && same_query(o, anchor))
        .take(4)
        .collect();

    let mut r = Report::new("Tables IX–X / Figure 8 — FeVisQA case study");
    r.line(format!("database: {}", anchor.db_name));
    // Table IX: the DV knowledge in sequence formats.
    r.line("DV knowledge (Table IX analogue):");
    r.line(format!("  input encoding: {}", anchor.input));
    // Figure 8a: the chart.
    if let Some(query_part) = segment(&anchor.input, "<vql> ", " <schema> ") {
        if let Some(chart) = render_chart(&query_part, &anchor.db_name, &zoo.corpus) {
            r.line("Figure 8a (visualization chart):");
            r.line(chart);
        }
    }

    let systems = vec![
        ModelKind::Seq2Vis,
        ModelKind::Transformer,
        ModelKind::Bart,
        ModelKind::CodeT5Sft(Size::Base),
        ModelKind::DataVisT5(Size::Large, Regime::Mft),
    ];
    let mut predictors = Vec::new();
    for kind in &systems {
        eprintln!("[table10] {}…", kind.label());
        let task = match kind {
            ModelKind::DataVisT5(_, Regime::Mft) => None,
            _ => Some(Task::FeVisQa),
        };
        let trained = zoo.train_model_cached(*kind, task);
        predictors.push((kind.label(), zoo.predictor(*kind, trained)));
    }

    r.line("Answers (Table X analogue):");
    for e in &group {
        let question = segment(&e.input, "<question> ", " <vql> ").unwrap_or_default();
        let gold = strip_prefix(Task::FeVisQa, &e.output);
        r.line(format!("Q: {question}"));
        r.line(format!("  Ground-truth: {gold}"));
        for (label, predictor) in &predictors {
            let answer = predictor.predict(e);
            let mark = if is_correct(Task::FeVisQa, &answer, e, &zoo.corpus) {
                "(ok)"
            } else {
                "(x)"
            };
            r.line(format!("  {label} {mark}: {answer}"));
        }
    }
    r.line("");
    r.line(
        "Paper analogue: only the MFT DataVisT5 answers both the binary and the numeric \
         questions consistently; weaker baselines miss totals and counts.",
    );
    emit("table10_case_fevisqa", &r.render());
}

fn same_query(a: &datavist5::data::TaskExample, b: &datavist5::data::TaskExample) -> bool {
    segment(&a.input, "<vql> ", " <schema> ") == segment(&b.input, "<vql> ", " <schema> ")
}

fn segment(text: &str, start: &str, end: &str) -> Option<String> {
    let after = text.split(start).nth(1)?;
    Some(after.split(end).next().unwrap_or(after).to_string())
}
