//! Table VII + Figure 7: vis-to-text case study — every model's generated
//! description of one held-out DV query.

use bench::{emit, experiment_scale, Report};
use corpus::Split;
use datavist5::case_study::{build_case, render_chart};
use datavist5::config::Size;
use datavist5::data::Task;
use datavist5::zoo::{ModelKind, Regime, Zoo};

fn main() {
    let scale = experiment_scale();
    let zoo = Zoo::new(scale);
    let examples = zoo.datasets.of(Task::VisToText, Split::Test);
    // A bar chart with ordering, like the paper's allergy example.
    let example = examples
        .iter()
        .find(|e| e.input.contains("order by") && e.input.contains("visualize bar"))
        .or_else(|| examples.first())
        .expect("no test examples");

    let systems = vec![
        ModelKind::Seq2Vis,
        ModelKind::Transformer,
        ModelKind::Bart,
        ModelKind::CodeT5Sft(Size::Base),
        ModelKind::DataVisT5(Size::Large, Regime::Mft),
    ];
    let mut predictions = Vec::new();
    for kind in systems {
        eprintln!("[table07] {}…", kind.label());
        let task = match kind {
            ModelKind::DataVisT5(_, Regime::Mft) => None,
            _ => Some(Task::VisToText),
        };
        let trained = zoo.train_model_cached(kind, task);
        let predictor = zoo.predictor(kind, trained);
        predictions.push((kind.label(), predictor.predict(example)));
    }

    let case = build_case(example, &zoo.corpus, &predictions);
    let mut r = Report::new("Table VII / Figure 7 — vis-to-text case study");
    r.line(format!("database: {}", example.db_name));
    // Figure 7: the chart the DV query renders.
    if let Some(query_part) = example
        .input
        .strip_prefix("<vql> ")
        .and_then(|rest| rest.split(" <schema> ").next())
    {
        if let Some(chart) = render_chart(query_part, &example.db_name, &zoo.corpus) {
            r.line("Figure 7 (chart of the DV query under discussion):");
            r.line(chart);
        }
    }
    r.line(case.render());
    r.line(
        "Paper analogue: un-pretrained seq2seq output is disjointed; pretrained SFT models \
         come close; the MFT DataVisT5 mirrors the ground truth, including the sort order.",
    );
    emit("table07_case_vis_to_text", &r.render());
}
