//! Deep-debug probe: inspects losses and decode behaviour of a small SFT
//! run to diagnose degenerate generation.

use bench::experiment_scale;
use corpus::Split;
use datavist5::data::Task;
use datavist5::finetune::single_task_examples;
use datavist5::zoo::Zoo;
use nn::decode::greedy_decode;
use nn::optim::LrSchedule;
use nn::t5::DecodeState;
use nn::train::{eval_mean, train_seq2seq, TrainConfig};
use tokenizer::special;

fn main() {
    let scale = experiment_scale();
    let zoo = Zoo::new(scale);
    let max_len = scale.max_len();
    let train = single_task_examples(
        &zoo.datasets,
        Task::TextToVis,
        &zoo.tok,
        max_len,
        Split::Train,
    );
    println!("train examples: {}", train.len());
    println!(
        "sample src len {}, tgt len {}",
        train[0].0.len(),
        train[0].1.len()
    );
    println!(
        "sample tgt ids: {:?}",
        &train[0].1[..train[0].1.len().min(12)]
    );

    let env = |k: &str, d: usize| -> usize {
        // det-ok: interactive debug probe; knobs only shape what it prints
        std::env::var(k)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(d)
    };
    // det-ok: interactive debug probe; knobs only shape what it prints
    let lr_env: f32 = std::env::var("LR")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5e-3);
    let steps_env = env("STEPS", 400);
    let rounds = env("ROUNDS", 4);
    let (model, mut ps) = {
        // Fresh (un-pretrained) model to isolate fine-tuning behaviour.
        let mut ps = nn::param::ParamSet::new();
        let mut rng = tensor::XorShift::new(42);
        let mut cfg = scale.t5_config(datavist5::config::Size::Base, zoo.tok.vocab().len());
        cfg.d_model = env("D_MODEL", cfg.d_model);
        cfg.d_ff = cfg.d_model * 2;
        cfg.heads = env("HEADS", cfg.heads);
        cfg.enc_layers = env("LAYERS", cfg.enc_layers);
        cfg.dec_layers = cfg.enc_layers;
        println!(
            "cfg: d={} ff={} heads={} layers={} lr={} steps/round={}",
            cfg.d_model, cfg.d_ff, cfg.heads, cfg.enc_layers, lr_env, steps_env
        );
        let model = nn::t5::T5Model::new(&mut ps, "dbg", cfg, &mut rng);
        (model, ps)
    };
    let before = eval_mean(&model, &ps, &train[..16.min(train.len())]);
    println!("loss before: {before:.3}");
    for (steps, lr) in std::iter::repeat_n((steps_env, lr_env), rounds) {
        let cfg = TrainConfig {
            steps,
            accum: 8,
            schedule: LrSchedule::Constant(lr),
            smoothing: 0.0,
            seed: 7,
            eval_every: 0,
            doctor: true,
            sanitizer: analysis::SanitizerMode::FirstStep,
            ckpt: None,
        };
        train_seq2seq(&model, &mut ps, &train, &[], &cfg);
        let loss = eval_mean(&model, &ps, &train[..16.min(train.len())]);
        println!("after +{steps} steps @ {lr}: train loss {loss:.3}");
        // Decode one training example.
        let (src, tgt) = &train[0];
        let mut state = DecodeState::new(&model, &ps, src);
        let out = greedy_decode(&mut state, special::EOS, 40);
        println!("  gold: {:?}", zoo.tok.decode(tgt));
        println!("  pred: {:?}", zoo.tok.decode(&out));
        // Distribution at step 0.
        let mut st2 = DecodeState::new(&model, &ps, src);
        let logits = st2.step(nn::t5::DECODER_START);
        let mut top: Vec<(usize, f32)> = logits.iter().copied().enumerate().collect();
        top.sort_by(|a, b| b.1.total_cmp(&a.1));
        let names: Vec<String> = top
            .iter()
            .take(5)
            .map(|(i, v)| format!("{}:{v:.2}", zoo.tok.vocab().token(*i as u32).unwrap_or("?")))
            .collect();
        println!("  step0 top5: {names:?}");
    }
}
