//! Telescope report: runs the full pipeline (pretrain → fine-tune →
//! batched decode → eval) with the observability layer enabled and renders
//! a flamegraph-style per-stage span table plus per-`OpKind` kernel
//! attribution for the training step.
//!
//! The kernel profiler must attribute at least `--min-coverage` (default
//! 95%) of the measured train-step wall time to individual tape kernels,
//! or the binary exits nonzero — this is the acceptance gate for the
//! profiler staying wired into every hot path.
//!
//! Artifacts: `BENCH_obs.json` (machine-readable summary), plus
//! `target/bench/obs_events.jsonl` (the raw event log) and
//! `target/bench/obs_trace.json` (Chrome `trace_event` export; load it
//! at `chrome://tracing` or <https://ui.perfetto.dev>). These change on
//! every run, so they live under `target/` — `bench/out/` holds only
//! blessed, committed goldens.
//!
//! `--overhead` runs the zero-overhead smoke instead: with `DATAVIST5_OBS`
//! unset, the instrumented decode path must match a baseline pass of the
//! same binary within `--tol` (default 2%) — the runtime cost of the
//! disabled layer is a branch on one atomic load per site.
//!
//! Usage: `obs_report [--preset base|large] [--steps N]
//! [--pretrain-steps N] [--min-coverage F] [--out PATH]`
//! or `obs_report --overhead [--tol F] [--repeats N] [--out PATH]`.

use std::time::Instant;

use corpus::{Corpus, CorpusConfig, Split};
use datavist5::config::{Scale, Size};
use datavist5::data::{strip_prefix, Task, TaskDatasets, TaskExample};
use datavist5::eval::{eval_text_gen, eval_text_to_vis};
use datavist5::finetune::{finetune, multi_task_examples};
use datavist5::pretrain::{pretrain, Objective, PretrainConfig, PretrainData};
use datavist5::zoo::Predictor;
use nn::decode::batched_greedy_decode;
use nn::param::ParamSet;
use nn::t5::{T5Config, T5Model};
use nn::train::TrainConfig;
use tensor::XorShift;
use tokenizer::{special, WordTokenizer};

fn main() {
    let mut preset = "base".to_string();
    let mut steps = 8usize;
    let mut pretrain_steps = 5usize;
    let mut min_coverage = 0.95f64;
    let mut overhead = false;
    let mut tol = 0.02f64;
    let mut repeats = 5usize;
    let mut out_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match a.as_str() {
            "--preset" => preset = val("--preset"),
            "--steps" => steps = val("--steps").parse().expect("--steps"),
            "--pretrain-steps" => {
                pretrain_steps = val("--pretrain-steps").parse().expect("--pretrain-steps")
            }
            "--min-coverage" => {
                min_coverage = val("--min-coverage").parse().expect("--min-coverage")
            }
            "--overhead" => overhead = true,
            "--tol" => tol = val("--tol").parse().expect("--tol"),
            "--repeats" => repeats = val("--repeats").parse().expect("--repeats"),
            "--out" => out_path = Some(val("--out")),
            other => panic!("unknown argument {other}"),
        }
    }

    if overhead {
        run_overhead(
            tol,
            repeats,
            out_path.unwrap_or_else(|| {
                bench::default_bench_out("obs_overhead")
                    .to_string_lossy()
                    .into_owned()
            }),
        );
    } else {
        run_report(
            &preset,
            steps,
            pretrain_steps,
            min_coverage,
            out_path.unwrap_or_else(|| {
                bench::default_bench_out("obs")
                    .to_string_lossy()
                    .into_owned()
            }),
        );
    }
}

/// Runs the instrumented pipeline and renders the telescope report.
fn run_report(
    preset: &str,
    steps: usize,
    pretrain_steps: usize,
    min_coverage: f64,
    out_path: String,
) {
    let size = match preset {
        "base" => Size::Base,
        "large" => Size::Large,
        other => panic!("unknown preset {other} (use base|large)"),
    };
    obs::reset();
    obs::set_enabled(true);

    let max_len = 64usize;
    let max_out = 24usize;

    let corpus = Corpus::generate(&CorpusConfig {
        seed: 17,
        dbs_per_domain: 1,
        queries_per_db: 6,
        facts_per_db: 3,
    });
    let datasets = TaskDatasets::build(&corpus);
    let tok = WordTokenizer::fit(datasets.all_texts(), 1);
    let cfg = Scale::Smoke.t5_config(size, tok.vocab().len());
    let mut ps = ParamSet::new();
    let mut rng = XorShift::new(0x7e1e);
    let model = T5Model::new(&mut ps, "t5", cfg, &mut rng);

    eprintln!(
        "[obs_report] preset={preset} vocab={} pretrain_steps={pretrain_steps} finetune_steps={steps}",
        tok.vocab().len()
    );

    {
        let _run = obs::span!("obs_report");

        // Stage 1: hybrid pre-training (MLM + BDC).
        let mut data = PretrainData::build(&datasets);
        data.add_dv_knowledge(&corpus.databases);
        let pcfg = PretrainConfig::at(pretrain_steps, 2, max_len);
        pretrain(&model, &mut ps, &tok, &data, Objective::Hybrid, &pcfg);

        // Stage 2: multi-task fine-tuning. Doctor/sanitizer off so the
        // step span measures pure train-step work for the coverage gate.
        let examples = multi_task_examples(&datasets, &tok, max_len, 2.0, 0x0b5);
        let mut tcfg = TrainConfig::fine_tune(steps);
        tcfg.accum = 2;
        tcfg.doctor = false;
        tcfg.sanitizer = analysis::SanitizerMode::Off;
        finetune(&model, &mut ps, &examples, &tcfg);

        // Stage 3: batched decode over test-split inputs.
        let test: Vec<&TaskExample> = datasets.of(Task::TextToVis, Split::Test);
        let srcs: Vec<Vec<u32>> = test
            .iter()
            .take(6)
            .map(|e| truncate(tok.encode_with_eos(&e.input), max_len))
            .collect();
        let _ = batched_greedy_decode(&model, &ps, &srcs, special::EOS, max_out, 4);

        // Stage 4: the paper's evaluation entry points.
        let predictor = BatchPredictor {
            model: &model,
            ps: &ps,
            tok: &tok,
            max_len,
            max_out,
        };
        let ttv: Vec<&TaskExample> = datasets.of(Task::TextToVis, Split::Test);
        let v2t: Vec<&TaskExample> = datasets.of(Task::VisToText, Split::Test);
        let _ = eval_text_to_vis(&predictor, &ttv, &corpus, 4);
        let _ = eval_text_gen(&predictor, &v2t, 4);
    }
    obs::span::assert_balanced();
    let snap = obs::snapshot();

    // Per-OpKind kernel attribution for the fine-tune train step: what
    // fraction of the measured step wall time the profiler accounts for.
    let step_path = "obs_report/finetune/train/step";
    let step = snap
        .spans
        .get(step_path)
        .unwrap_or_else(|| panic!("span '{step_path}' missing from snapshot"));
    let step_kernels: Vec<&obs::KernelEntry> = snap
        .kernels
        .iter()
        .filter(|k| k.span == step_path)
        .collect();
    let attributed_ns: u64 = step_kernels.iter().map(|k| k.stat.ns).sum();
    let coverage = attributed_ns as f64 / step.total_ns.max(1) as f64;

    let widths = [44usize, 6, 10, 12, 10];
    let mut r = bench::Report::new("Telescope: spans and kernel attribution");
    r.row(&widths, &["span", "count", "ms", "ops", "gflop"]);
    r.rule(&widths);
    let mut span_rows = Vec::new();
    for (path, s) in &snap.spans {
        let depth = path.matches('/').count();
        let label = format!("{}{}", "  ".repeat(depth), path.rsplit('/').next().unwrap());
        r.row(
            &widths,
            &[
                &label,
                &s.count.to_string(),
                &format!("{:.2}", s.total_ns as f64 / 1e6),
                &s.ops.to_string(),
                &format!("{:.4}", s.flops as f64 / 1e9),
            ],
        );
        span_rows.push(serde_json::json!({
            "span": path.clone(),
            "count": s.count as i64,
            "ms": s.total_ns as f64 / 1e6,
            "ops": s.ops as i64,
            "flops": s.flops as i64,
        }));
    }
    r.line("");
    r.line(format!("kernels attributed to {step_path}:"));
    let kwidths = [16usize, 4, 6, 10, 7, 10, 10];
    r.row(
        &kwidths,
        &["op", "ph", "calls", "ms", "pct", "mbytes", "gflop"],
    );
    r.rule(&kwidths);
    let mut kernel_rows = Vec::new();
    let mut ranked: Vec<&&obs::KernelEntry> = step_kernels.iter().collect();
    ranked.sort_by(|a, b| b.stat.ns.cmp(&a.stat.ns).then(a.op.cmp(&b.op)));
    for k in ranked {
        let pct = 100.0 * k.stat.ns as f64 / step.total_ns.max(1) as f64;
        r.row(
            &kwidths,
            &[
                &k.op,
                k.phase.as_str(),
                &k.stat.calls.to_string(),
                &format!("{:.2}", k.stat.ns as f64 / 1e6),
                &format!("{pct:.1}%"),
                &format!("{:.1}", k.stat.bytes as f64 / 1e6),
                &format!("{:.4}", k.stat.flops as f64 / 1e9),
            ],
        );
        kernel_rows.push(serde_json::json!({
            "op": k.op.clone(),
            "phase": k.phase.as_str(),
            "calls": k.stat.calls as i64,
            "ns": k.stat.ns as i64,
            "bytes": k.stat.bytes as i64,
            "flops": k.stat.flops as i64,
            "pct_of_step": pct,
        }));
    }
    r.line("");
    r.line(format!(
        "step coverage: {:.1}% of {:.2} ms attributed ({} kernel rows); gate >= {:.0}%",
        coverage * 100.0,
        step.total_ns as f64 / 1e6,
        step_kernels.len(),
        min_coverage * 100.0
    ));
    bench::emit_scratch("obs_report", &r.render());

    // Raw artifacts: the JSONL event log and the Chrome trace. These
    // differ on every run (wall-clock timestamps), so they land in the
    // uncommitted scratch dir — never in the blessed bench/out goldens.
    let out_dir = bench::scratch_dir();
    let events_path = out_dir.join("obs_events.jsonl");
    std::fs::write(&events_path, obs::sink::write_jsonl(&snap.events)).expect("write events");
    let trace_path = out_dir.join("obs_trace.json");
    std::fs::write(&trace_path, obs::sink::chrome_trace(&snap.events)).expect("write trace");

    let mut counter_obj = Vec::new();
    for (name, total) in &snap.counters {
        counter_obj.push(serde_json::json!({ "name": name.clone(), "total": *total as i64 }));
    }
    // Canonical perf block: step wall time, attribution coverage, and
    // per-OpKind FLOP/s + bytes/s derived from the profiler aggregates
    // for the train step — kernel-level throughput per phase with zero
    // new instrumentation.
    let mut samples = vec![
        bench::perf::sample(
            "train/step_ms",
            bench::perf::Unit::Ms,
            step.total_ns as f64 / 1e6,
        ),
        bench::perf::sample("obs/coverage", bench::perf::Unit::Ratio, coverage),
    ];
    samples.extend(bench::perf::kernel_series(&step_kernels));
    let perf = bench::perf::PerfBlock::new(bench::perf::run_header("obs", Some(preset)), samples);

    // Legacy ad-hoc fields kept alongside `perf` for one release.
    let json = serde_json::json!({
        "preset": preset.to_string(),
        "pretrain_steps": pretrain_steps,
        "finetune_steps": steps,
        "step_span": step_path.to_string(),
        "step_ms": step.total_ns as f64 / 1e6,
        "kernel_coverage": coverage,
        "min_coverage": min_coverage,
        "events": snap.events.len(),
        "spans": span_rows,
        "step_kernels": kernel_rows,
        "counters": counter_obj,
        "perf": perf.to_json(),
    });
    let rendered = serde_json::to_string_pretty(&json).expect("serialize");
    std::fs::write(&out_path, rendered + "\n").expect("write BENCH_obs.json");
    eprintln!(
        "[obs_report] coverage {:.1}% | {} events -> {out_path}, {}, {}",
        coverage * 100.0,
        snap.events.len(),
        events_path.display(),
        trace_path.display()
    );

    obs::set_enabled(false);
    assert!(
        coverage >= min_coverage,
        "kernel attribution covered {:.1}% of the train step, below the {:.0}% gate",
        coverage * 100.0,
        min_coverage * 100.0
    );
}

/// Zero-overhead smoke: with obs disabled, decode throughput must match a
/// baseline pass of the identical workload within `tol`.
/// Median of per-round paired deltas `base_time/off_time - 1`. Each
/// round times the two arms back-to-back, so both passes see the same
/// contention environment; the median discards rounds where a preemption
/// landed mid-pass. Signed: positive means the off arm ran faster.
fn paired_median_delta(base_times: &[f64], off_times: &[f64]) -> f64 {
    let mut deltas: Vec<f64> = base_times
        .iter()
        .zip(off_times)
        .map(|(b, o)| b / o - 1.0)
        .collect();
    deltas.sort_by(f64::total_cmp);
    let n = deltas.len();
    assert!(n > 0, "paired_median_delta needs at least one round");
    if n % 2 == 1 {
        deltas[n / 2]
    } else {
        0.5 * (deltas[n / 2 - 1] + deltas[n / 2])
    }
}

fn run_overhead(tol: f64, repeats: usize, out_path: String) {
    assert!(
        !obs::enabled(),
        "run the overhead smoke without DATAVIST5_OBS set"
    );
    const VOCAB: usize = 48;
    let cfg = T5Config {
        vocab: VOCAB,
        ..Scale::Smoke.t5_config(Size::Base, VOCAB)
    };
    let mut ps = ParamSet::new();
    let mut rng = XorShift::new(0x0b5dec0de);
    let model = T5Model::new(&mut ps, "bench", cfg, &mut rng);
    let eos = VOCAB as u32; // outside the vocab: every request decodes max_out tokens
    let max_out = 64usize;
    let srcs: Vec<Vec<u32>> = (0..8)
        .map(|_| {
            let len = 8 + (rng.next_u64() % 9) as usize;
            (0..len)
                .map(|_| (rng.next_u64() % VOCAB as u64) as u32)
                .collect()
        })
        .collect();
    let tokens = (srcs.len() * max_out) as f64;

    let timed = || {
        let t0 = Instant::now();
        let out = batched_greedy_decode(&model, &ps, &srcs, eos, max_out, 4);
        let secs = t0.elapsed().as_secs_f64();
        assert_eq!(out.iter().map(Vec::len).sum::<usize>(), tokens as usize);
        secs
    };

    // Warmup, then paired baseline/obs-off rounds (both with the layer
    // disabled, so both run the same compiled-in enabled() checks). Each
    // round times the two arms back-to-back — they share one contention
    // environment — and alternates which arm goes first to cancel any
    // within-round drift. The gate compares the *median* of per-round
    // paired deltas: each pass is only a few ms, so on a contended core
    // a best-of estimator never converges (a preemption mid-pass skews
    // the minimum for one arm but not the other), while the paired
    // median discards exactly those outlier rounds. The sampler is also
    // adaptive: if the arms still disagree after `repeats` rounds it
    // keeps sampling (up to 8x) — identical arms converge, a real
    // throughput difference persists and still fails. The tolerance
    // itself never widens.
    for _ in 0..3 {
        let _ = batched_greedy_decode(&model, &ps, &srcs, eos, max_out, 4);
    }
    let (mut base_times, mut off_times) = (Vec::new(), Vec::new());
    let max_rounds = repeats.max(1) * 8;
    while base_times.len() < repeats.max(1)
        || (base_times.len() < max_rounds
            && paired_median_delta(&base_times, &off_times).abs() > tol)
    {
        if base_times.len() % 2 == 0 {
            base_times.push(timed());
            off_times.push(timed());
        } else {
            let off = timed();
            base_times.push(timed());
            off_times.push(off);
        }
    }
    let rounds = base_times.len();
    let base_best = base_times.iter().copied().fold(f64::INFINITY, f64::min);
    let off_best = off_times.iter().copied().fold(f64::INFINITY, f64::min);
    let baseline_tps = tokens / base_best;
    let off_tps = tokens / off_best;
    let rel = paired_median_delta(&base_times, &off_times).abs();
    eprintln!(
        "[obs_report] overhead: baseline {baseline_tps:.0} tok/s | obs off {off_tps:.0} tok/s \
         (paired median over {rounds} rounds)"
    );

    // Informational: the same workload with obs enabled (spans, counters,
    // gauges, and batch section kernels all live).
    obs::reset();
    obs::set_enabled(true);
    let mut on_best = f64::INFINITY;
    for _ in 0..repeats {
        on_best = on_best.min(timed());
    }
    let on_tps = tokens / on_best;
    eprintln!("[obs_report] overhead: obs on {on_tps:.0} tok/s (best of {repeats})");
    obs::set_enabled(false);
    obs::reset();

    // The bespoke file shape folds into canonical series: the headline
    // is `obs/overhead_ratio` — the slowdown factor of *enabling* the
    // layer (baseline ÷ obs-on throughput, 1.0 = free, gated downward
    // in bench/perf_gates.toml).
    let perf = bench::perf::PerfBlock::new(
        bench::perf::run_header("obs_overhead", None),
        vec![
            bench::perf::sample(
                "obs/overhead_ratio",
                bench::perf::Unit::Ratio,
                baseline_tps / on_tps,
            ),
            bench::perf::sample("obs/off_rel_delta", bench::perf::Unit::Ratio, rel),
            bench::perf::sample(
                "obs/baseline_tokens_per_sec",
                bench::perf::Unit::TokensPerSec,
                baseline_tps,
            ),
        ],
    );
    // Legacy ad-hoc fields kept alongside `perf` for one release.
    let json = serde_json::json!({
        "tokens_per_pass": tokens,
        "repeats": repeats,
        "rounds": rounds,
        "baseline_tokens_per_sec": baseline_tps,
        "obs_off_tokens_per_sec": off_tps,
        "obs_on_tokens_per_sec": on_tps,
        "off_rel_delta": rel,
        "tol": tol,
        "perf": perf.to_json(),
    });
    let rendered = serde_json::to_string_pretty(&json).expect("serialize");
    std::fs::write(&out_path, rendered + "\n").expect("write overhead json");
    eprintln!(
        "[obs_report] obs-off delta {:.2}% (tol {:.0}%) | obs-on {:.2}x of baseline -> {out_path}",
        rel * 100.0,
        tol * 100.0,
        on_tps / baseline_tps
    );
    assert!(
        rel <= tol,
        "obs-off throughput drifted {:.2}% from baseline (tol {:.0}%)",
        rel * 100.0,
        tol * 100.0
    );
}

fn truncate(mut ids: Vec<u32>, max_len: usize) -> Vec<u32> {
    if ids.len() > max_len {
        ids.truncate(max_len - 1);
        ids.push(special::EOS);
    }
    ids
}

/// Minimal batched predictor for the eval stage: encode, batched greedy
/// decode, strip the task prefix.
struct BatchPredictor<'a> {
    model: &'a T5Model,
    ps: &'a ParamSet,
    tok: &'a WordTokenizer,
    max_len: usize,
    max_out: usize,
}

impl Predictor for BatchPredictor<'_> {
    fn predict(&self, example: &TaskExample) -> String {
        self.predict_batch(&[example]).remove(0)
    }

    fn predict_batch(&self, examples: &[&TaskExample]) -> Vec<String> {
        let srcs: Vec<Vec<u32>> = examples
            .iter()
            .map(|e| truncate(self.tok.encode_with_eos(&e.input), self.max_len))
            .collect();
        let outs = batched_greedy_decode(self.model, self.ps, &srcs, special::EOS, self.max_out, 4);
        examples
            .iter()
            .zip(outs)
            .map(|(e, ids)| strip_prefix(e.task, &self.tok.decode(&ids)))
            .collect()
    }
}
