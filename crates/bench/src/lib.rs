//! Shared harness for the experiment binaries.
//!
//! Every paper table/figure has a binary under `src/bin/` that trains (or
//! loads cached) models, evaluates them, and prints a paper-vs-measured
//! report. Reports are also written to `bench/out/` so EXPERIMENTS.md can
//! be assembled from one `run_all.sh` pass.

use std::fmt::Write as _;
use std::path::PathBuf;

use datavist5::config::Scale;

pub mod perf;
pub mod trace;

/// The scale experiment binaries run at: `DATAVIST5_SCALE` if set,
/// otherwise `Full` (binaries exist to regenerate the paper's numbers;
/// tests and Criterion default to smoke via [`Scale::from_env`]).
pub fn experiment_scale() -> Scale {
    match std::env::var("DATAVIST5_SCALE").as_deref() {
        Ok("smoke") | Ok("SMOKE") => Scale::Smoke,
        _ => Scale::Full,
    }
}

/// The workspace root: the working directory when it contains `crates/`
/// (the `cargo run` convention), else resolved from this crate's
/// compile-time location. Used by the determinism audit to find the
/// sources it sweeps.
pub fn workspace_root() -> PathBuf {
    let cwd = PathBuf::from(".");
    if cwd.join("crates").is_dir() {
        return cwd;
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// The default `--out` path for a bench binary's JSON report: the
/// workspace root, named `BENCH_<name>.json`. Every bench bin that emits
/// machine-readable output takes `--out PATH` and defaults to this, so
/// CI artifacts land in one predictable place.
pub fn default_bench_out(name: &str) -> PathBuf {
    workspace_root().join(format!("BENCH_{name}.json"))
}

/// Parses the conventional `--out PATH` argument shared by the bench
/// bins, falling back to [`default_bench_out`]. Exits with usage on
/// anything unrecognized.
pub fn parse_out_arg(bin: &str) -> PathBuf {
    let mut out = default_bench_out(bin);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(path) => out = PathBuf::from(path),
                None => {
                    eprintln!("--out needs a path; usage: {bin} [--out PATH]");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown arg {other}; usage: {bin} [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    out
}

/// Output directory for *blessed* reports: paper tables and figures that
/// are committed to the repository and reviewed when they change.
pub fn out_dir() -> PathBuf {
    let dir = PathBuf::from("bench").join("out");
    let _ = std::fs::create_dir_all(&dir);
    dir
}

/// Scratch directory for run-to-run artifacts (raw event logs, traces,
/// per-run reports): `target/bench`, which is never committed. Anything
/// whose bytes change on every invocation belongs here, not in
/// [`out_dir`], so routine runs leave the working tree clean.
pub fn scratch_dir() -> PathBuf {
    let dir = workspace_root().join("target").join("bench");
    let _ = std::fs::create_dir_all(&dir);
    dir
}

/// Prints a report and writes it to `bench/out/<name>.txt` (a blessed,
/// committed artifact — use [`emit_scratch`] for per-run output).
pub fn emit(name: &str, content: &str) {
    println!("{content}");
    let path = out_dir().join(format!("{name}.txt"));
    if let Err(e) = std::fs::write(&path, content) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

/// Prints a report and writes it to `target/bench/<name>.txt` — the
/// uncommitted twin of [`emit`] for artifacts that differ every run.
pub fn emit_scratch(name: &str, content: &str) {
    println!("{content}");
    let path = scratch_dir().join(format!("{name}.txt"));
    if let Err(e) = std::fs::write(&path, content) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

/// Simple fixed-width table builder for aligned console reports.
#[derive(Debug, Default)]
pub struct Report {
    lines: Vec<String>,
}

impl Report {
    pub fn new(title: &str) -> Report {
        let mut r = Report::default();
        r.lines.push(format!("== {title} =="));
        r
    }

    /// Adds a free-form line.
    pub fn line(&mut self, text: impl AsRef<str>) -> &mut Self {
        self.lines.push(text.as_ref().to_string());
        self
    }

    /// Adds a row of cells padded to the given widths.
    pub fn row(&mut self, widths: &[usize], cells: &[&str]) -> &mut Self {
        let mut s = String::new();
        for (i, cell) in cells.iter().enumerate() {
            let w = widths.get(i).copied().unwrap_or(12);
            let _ = write!(s, "{cell:<w$} ");
        }
        self.lines.push(s.trim_end().to_string());
        self
    }

    /// Adds a horizontal rule sized to the widths.
    pub fn rule(&mut self, widths: &[usize]) -> &mut Self {
        let total: usize = widths.iter().map(|w| w + 1).sum();
        self.lines.push("-".repeat(total));
        self
    }

    pub fn render(&self) -> String {
        self.lines.join("\n") + "\n"
    }
}

/// Formats a 0–1 metric like the paper (`0.6833`).
pub fn m4(x: f64) -> String {
    format!("{x:.4}")
}

/// Formats a ×100 metric like Table XII (`65.22`).
pub fn m100(x: f64) -> String {
    format!("{:.2}", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_rows_aligned() {
        let mut r = Report::new("demo");
        r.row(&[8, 6], &["model", "em"]);
        r.rule(&[8, 6]);
        r.row(&[8, 6], &["ours", "0.68"]);
        let text = r.render();
        assert!(text.starts_with("== demo =="));
        assert!(text.contains("model    em"));
        assert!(text.contains("ours     0.68"));
    }

    #[test]
    fn metric_formatting() {
        assert_eq!(m4(0.68334), "0.6833");
        assert_eq!(m100(0.6522), "65.22");
    }
}
