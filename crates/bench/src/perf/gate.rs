//! The regression gate: compares the current run's perf blocks against
//! the history baseline under per-series tolerance bands and emits the
//! typed T-codes registered in `analysis::registry` family `perf`:
//!
//! - **T001** throughput regression — a gated series moved against its
//!   direction by more than its tolerance band. Suppressable per series
//!   via `[allow."…"]` with a reason.
//! - **T002** missing series — the baseline has a series no current
//!   bench emitted. Suppressable (a series can be retired with a
//!   reasoned allow entry, then removed from the baseline at the next
//!   bless).
//! - **T003** schema violation — malformed series name, non-finite
//!   value, unknown unit, unit changed vs baseline, or duplicate
//!   series. Never suppressable: the schema is the contract.
//! - **T004** stale gate entry — `perf_gates.toml` names a series no
//!   bin emits. Never suppressable: the config must describe reality.
//!
//! Comparison semantics (direction `up`): regression iff
//! `cur < base * (1 - tol)` — strictly below the band edge, so a value
//! *exactly at* the boundary passes. Direction `down` mirrors this:
//! `cur > base * (1 + tol)`.

use std::collections::BTreeMap;

use super::{Direction, PerfBlock, Unit};
use crate::perf::history::HistoryRecord;

/// Default tolerance band when a series has no override: ±10%.
pub const DEFAULT_TOL: f64 = 0.10;

/// Per-series override from `perf_gates.toml`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SeriesOverride {
    pub tol: Option<f64>,
    pub dir: Option<Direction>,
}

/// Parsed gate configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct GateConfig {
    pub default_tol: f64,
    /// Keys are exact series names or `family/*` prefixes (trailing
    /// wildcard only); exact match wins over the longest wildcard.
    pub overrides: BTreeMap<String, SeriesOverride>,
    /// Series → reason. Suppresses T001/T002 for that series.
    pub allow: BTreeMap<String, String>,
}

impl Default for GateConfig {
    fn default() -> GateConfig {
        GateConfig {
            default_tol: DEFAULT_TOL,
            overrides: BTreeMap::new(),
            allow: BTreeMap::new(),
        }
    }
}

impl GateConfig {
    /// The effective (tolerance, direction-override) for a series:
    /// exact entry first, else the longest matching `prefix/*` wildcard.
    pub fn effective(&self, series: &str) -> (f64, Option<Direction>) {
        let mut tol = self.default_tol;
        let mut dir = None;
        let mut best: Option<&SeriesOverride> = self.overrides.get(series);
        if best.is_none() {
            let mut best_len = 0;
            for (key, ov) in &self.overrides {
                if let Some(prefix) = key.strip_suffix("/*") {
                    if wildcard_matches(prefix, series) && prefix.len() >= best_len {
                        best_len = prefix.len();
                        best = Some(ov);
                    }
                }
            }
        }
        if let Some(ov) = best {
            if let Some(t) = ov.tol {
                tol = t;
            }
            dir = ov.dir;
        }
        (tol, dir)
    }
}

fn wildcard_matches(prefix: &str, series: &str) -> bool {
    series
        .strip_prefix(prefix)
        .is_some_and(|rest| rest.starts_with('/'))
}

/// Does a gate-config key (exact or `prefix/*`) match any current series?
fn key_matches_any<'a>(key: &str, mut series: impl Iterator<Item = &'a str>) -> bool {
    match key.strip_suffix("/*") {
        Some(prefix) => series.any(|s| wildcard_matches(prefix, s)),
        None => series.any(|s| s == key),
    }
}

/// Parses the `perf_gates.toml` subset: `#` comments, `[defaults]`,
/// `[series."name"]`, `[allow."name"]` sections; `key = value` with
/// float, quoted-string, or bool values. Anything else is an error —
/// a config typo must fail the gate loudly, not silently un-gate.
pub fn parse_gates(text: &str) -> Result<GateConfig, String> {
    #[derive(PartialEq)]
    enum Section {
        None,
        Defaults,
        Series(String),
        Allow(String),
    }
    let mut cfg = GateConfig::default();
    let mut section = Section::None;
    for (lineno, raw) in text.lines().enumerate() {
        let n = lineno + 1;
        let line = match raw.split_once('#') {
            // A '#' inside a quoted value would be mis-stripped; keep it
            // simple by only stripping when the '#' is outside quotes.
            Some((before, _)) if before.matches('"').count() % 2 == 0 => before.trim(),
            _ => raw.trim(),
        };
        if line.is_empty() {
            continue;
        }
        if let Some(head) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            section = if head == "defaults" {
                Section::Defaults
            } else if let Some(name) = parse_section_key(head, "series") {
                Section::Series(name?)
            } else if let Some(name) = parse_section_key(head, "allow") {
                Section::Allow(name?)
            } else {
                return Err(format!("line {n}: unknown section [{head}]"));
            };
            if let Section::Series(name) | Section::Allow(name) = &section {
                let check = name.strip_suffix("/*").unwrap_or(name);
                super::validate_series(check).map_err(|e| format!("line {n}: {e}"))?;
            }
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .map(|(k, v)| (k.trim(), v.trim()))
            .ok_or_else(|| format!("line {n}: expected 'key = value', got '{line}'"))?;
        match &section {
            Section::None => return Err(format!("line {n}: key outside any section")),
            Section::Defaults => match key {
                "tol" => {
                    cfg.default_tol = parse_float(value).map_err(|e| format!("line {n}: {e}"))?
                }
                _ => return Err(format!("line {n}: unknown defaults key '{key}'")),
            },
            Section::Series(name) => {
                let ov = cfg.overrides.entry(name.clone()).or_default();
                match key {
                    "tol" => {
                        ov.tol = Some(parse_float(value).map_err(|e| format!("line {n}: {e}"))?)
                    }
                    "dir" => {
                        let s = parse_string(value).map_err(|e| format!("line {n}: {e}"))?;
                        ov.dir = Some(
                            Direction::parse(&s)
                                .ok_or_else(|| format!("line {n}: unknown dir '{s}'"))?,
                        );
                    }
                    _ => return Err(format!("line {n}: unknown series key '{key}'")),
                }
            }
            Section::Allow(name) => match key {
                "reason" => {
                    let reason = parse_string(value).map_err(|e| format!("line {n}: {e}"))?;
                    if reason.trim().is_empty() {
                        return Err(format!("line {n}: allow entry needs a non-empty reason"));
                    }
                    cfg.allow.insert(name.clone(), reason);
                }
                _ => return Err(format!("line {n}: unknown allow key '{key}'")),
            },
        }
    }
    for name in cfg.allow.keys() {
        if name.ends_with("/*") {
            return Err(format!(
                "allow entry '{name}': wildcards are not allowed in [allow] — \
                 suppressions must name one series each"
            ));
        }
    }
    Ok(cfg)
}

/// Parses `series."quoted/name"` / `allow."quoted/name"` section heads.
fn parse_section_key(head: &str, kind: &str) -> Option<Result<String, String>> {
    let rest = head.strip_prefix(kind)?.strip_prefix('.')?;
    Some(
        rest.strip_prefix('"')
            .and_then(|r| r.strip_suffix('"'))
            .map(str::to_string)
            .ok_or_else(|| format!("[{kind}.…] key must be double-quoted, got [{head}]")),
    )
}

fn parse_float(v: &str) -> Result<f64, String> {
    let x: f64 = v
        .parse()
        .map_err(|_| format!("expected a number, got '{v}'"))?;
    if !x.is_finite() || x < 0.0 {
        return Err(format!("tolerance must be finite and >= 0, got '{v}'"));
    }
    Ok(x)
}

fn parse_string(v: &str) -> Result<String, String> {
    v.strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("expected a double-quoted string, got '{v}'"))
}

/// One gate finding.
#[derive(Debug, Clone, PartialEq)]
pub struct GateFinding {
    /// `T001` | `T002` | `T003` | `T004`.
    pub code: &'static str,
    /// The series (or gate-config key) the finding is about; empty for
    /// block-level schema violations.
    pub series: String,
    pub message: String,
    /// The allow reason, when a `[allow]` entry suppresses this finding.
    pub suppressed: Option<String>,
}

/// The gate verdict over one run.
#[derive(Debug, Clone, Default)]
pub struct GateReport {
    pub findings: Vec<GateFinding>,
    /// Series compared against the baseline.
    pub checked: usize,
    /// Series that *improved* beyond the band (informational).
    pub improved: Vec<String>,
}

impl GateReport {
    pub fn unsuppressed(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.suppressed.is_none())
            .count()
    }

    pub fn allowed(&self) -> usize {
        self.findings.len() - self.unsuppressed()
    }

    /// `(unsuppressed, suppressed)` counts for one code.
    pub fn count(&self, code: &str) -> (usize, usize) {
        let mut open = 0;
        let mut shut = 0;
        for f in self.findings.iter().filter(|f| f.code == code) {
            if f.suppressed.is_none() {
                open += 1;
            } else {
                shut += 1;
            }
        }
        (open, shut)
    }

    pub fn clean(&self) -> bool {
        self.unsuppressed() == 0
    }
}

/// Runs the gate: current blocks (+ parse-time violations) vs the
/// baseline run.
pub fn run_gate(
    blocks: &[PerfBlock],
    parse_violations: &[String],
    baseline: &BTreeMap<&str, &HistoryRecord>,
    cfg: &GateConfig,
) -> GateReport {
    let mut report = GateReport::default();

    for v in parse_violations {
        report.findings.push(GateFinding {
            code: "T003",
            series: String::new(),
            message: v.clone(),
            suppressed: None,
        });
    }

    // Collect current samples; a series emitted twice (within or across
    // bins) is a schema violation — series names are globally unique.
    let mut current: BTreeMap<&str, (Unit, f64, &str)> = BTreeMap::new();
    for block in blocks {
        for s in &block.samples {
            match current.get(s.series.as_str()) {
                Some((_, _, first_bench)) => report.findings.push(GateFinding {
                    code: "T003",
                    series: s.series.clone(),
                    message: format!(
                        "series '{}' emitted by both '{}' and '{}'",
                        s.series, first_bench, block.header.bench
                    ),
                    suppressed: None,
                }),
                None => {
                    current.insert(&s.series, (s.unit, s.value, &block.header.bench));
                }
            }
        }
    }

    // Baseline series that vanished → T002 (suppressable: retiring a
    // series takes a reasoned allow entry until the next bless).
    for (series, rec) in baseline {
        if !current.contains_key(series) {
            report.findings.push(GateFinding {
                code: "T002",
                series: series.to_string(),
                message: format!(
                    "baseline (run {}) has '{series}' but no current bench emitted it",
                    rec.seq
                ),
                suppressed: cfg.allow.get(*series).cloned(),
            });
        }
    }

    // Value comparison for series present in both.
    for (series, (unit, value, _bench)) in &current {
        let Some(base) = baseline.get(series) else {
            continue; // new series: starts being gated at the next bless
        };
        if base.unit != *unit {
            report.findings.push(GateFinding {
                code: "T003",
                series: series.to_string(),
                message: format!(
                    "'{series}' changed unit: baseline {}, current {}",
                    base.unit.as_str(),
                    unit.as_str()
                ),
                suppressed: None,
            });
            continue;
        }
        report.checked += 1;
        let (tol, dir_override) = cfg.effective(series);
        let dir = dir_override.unwrap_or_else(|| unit.direction());
        let (regressed, improved) = match dir {
            Direction::Higher => (
                *value < base.value * (1.0 - tol),
                *value > base.value * (1.0 + tol),
            ),
            Direction::Lower => (
                *value > base.value * (1.0 + tol),
                *value < base.value * (1.0 - tol),
            ),
            Direction::Info => (false, false),
        };
        if regressed {
            let pct = if base.value != 0.0 {
                (value / base.value - 1.0) * 100.0
            } else {
                0.0
            };
            report.findings.push(GateFinding {
                code: "T001",
                series: series.to_string(),
                message: format!(
                    "'{series}' regressed: baseline {} -> current {} ({pct:+.1}%, tol ±{:.0}%, dir {})",
                    super::trend::fmt_value(base.value),
                    super::trend::fmt_value(*value),
                    tol * 100.0,
                    dir.as_str(),
                ),
                suppressed: cfg.allow.get(*series).cloned(),
            });
        } else if improved {
            report.improved.push(series.to_string());
        }
    }

    // Gate-config entries that match nothing current → T004.
    for key in cfg.overrides.keys() {
        if !key_matches_any(key, current.keys().copied()) {
            report.findings.push(GateFinding {
                code: "T004",
                series: key.clone(),
                message: format!("[series.\"{key}\"] matches no series any bench emits"),
                suppressed: None,
            });
        }
    }
    for key in cfg.allow.keys() {
        // An allow for a *baseline* series that vanished is load-bearing
        // (it suppresses the T002 above), so only flag entries matching
        // neither current nor baseline.
        if !key_matches_any(key, current.keys().copied()) && !baseline.contains_key(key.as_str()) {
            report.findings.push(GateFinding {
                code: "T004",
                series: key.clone(),
                message: format!("[allow.\"{key}\"] matches no current or baseline series"),
                suppressed: None,
            });
        }
    }

    report
        .findings
        .sort_by(|a, b| (a.code, &a.series).cmp(&(b.code, &b.series)));
    report
}

#[cfg(test)]
mod tests {
    use super::super::{sample, PerfBlock, RunHeader};
    use super::*;

    fn header(bench: &str) -> RunHeader {
        RunHeader {
            bench: bench.to_string(),
            preset: None,
            git_rev: "r".to_string(),
            hardware_threads: 2,
        }
    }

    fn base_rec(series: &str, unit: Unit, value: f64) -> HistoryRecord {
        HistoryRecord {
            seq: 7,
            series: series.to_string(),
            unit,
            value,
            bench: "decode".to_string(),
            preset: None,
            git_rev: "r".to_string(),
            hardware_threads: 2,
        }
    }

    #[test]
    fn config_parses_defaults_overrides_and_allows() {
        let cfg = parse_gates(
            r#"
            # comment
            [defaults]
            tol = 0.10

            [series."decode/batched/tokens_per_sec"]
            tol = 0.25   # wall-clock noise

            [series."kernel/*"]
            tol = 0.5

            [series."obs/overhead_ratio"]
            dir = "down"
            tol = 3.0

            [allow."serve/old/qps"]
            reason = "retired in PR 11"
            "#,
        )
        .unwrap();
        assert_eq!(cfg.default_tol, 0.10);
        assert_eq!(cfg.effective("decode/batched/tokens_per_sec").0, 0.25);
        assert_eq!(cfg.effective("kernel/mm_nn/fwd/flops_per_sec").0, 0.5);
        assert_eq!(cfg.effective("decode/seq/tokens_per_sec").0, 0.10);
        assert_eq!(
            cfg.effective("obs/overhead_ratio").1,
            Some(Direction::Lower)
        );
        assert_eq!(cfg.allow["serve/old/qps"], "retired in PR 11");
    }

    #[test]
    fn config_rejects_garbage() {
        assert!(parse_gates("[defaults]\nspeed = 1").is_err());
        assert!(parse_gates("tol = 0.1").is_err()); // key outside section
        assert!(parse_gates("[series.unquoted/name]\ntol = 0.1").is_err());
        assert!(parse_gates("[defaults]\ntol = -0.5").is_err());
        assert!(parse_gates("[allow.\"a/b\"]\nreason = \"\"").is_err());
        assert!(parse_gates("[allow.\"a/*\"]\nreason = \"no wildcards\"").is_err());
        assert!(parse_gates("[mystery]\nx = 1").is_err());
    }

    #[test]
    fn regression_is_strictly_below_the_band_edge() {
        let cfg = GateConfig::default();
        let base = base_rec("d/tps", Unit::TokensPerSec, 1000.0);
        let baseline: BTreeMap<&str, &HistoryRecord> = [("d/tps", &base)].into();
        // Exactly at the edge: 900.0 == 1000 * (1 - 0.10) → passes.
        let at_edge = PerfBlock::new(
            header("decode"),
            vec![sample("d/tps", Unit::TokensPerSec, 900.0)],
        );
        let r = run_gate(&[at_edge], &[], &baseline, &cfg);
        assert_eq!(r.count("T001"), (0, 0), "{:?}", r.findings);
        // One ulp below the edge → T001.
        let below = PerfBlock::new(
            header("decode"),
            vec![sample(
                "d/tps",
                Unit::TokensPerSec,
                f64::from_bits(900.0f64.to_bits() - 1),
            )],
        );
        let r = run_gate(&[below], &[], &baseline, &cfg);
        assert_eq!(r.count("T001"), (1, 0), "{:?}", r.findings);
    }

    #[test]
    fn lower_is_better_direction_mirrors() {
        let cfg = GateConfig::default();
        let base = base_rec("t/step_ms", Unit::Ms, 10.0);
        let baseline: BTreeMap<&str, &HistoryRecord> = [("t/step_ms", &base)].into();
        let slower = PerfBlock::new(header("obs"), vec![sample("t/step_ms", Unit::Ms, 11.5)]);
        let r = run_gate(&[slower], &[], &baseline, &cfg);
        assert_eq!(r.count("T001"), (1, 0));
        let faster = PerfBlock::new(header("obs"), vec![sample("t/step_ms", Unit::Ms, 8.0)]);
        let r = run_gate(&[faster], &[], &baseline, &cfg);
        assert_eq!(r.count("T001"), (0, 0));
        assert_eq!(r.improved, vec!["t/step_ms".to_string()]);
    }

    #[test]
    fn counts_are_presence_gated_only() {
        let cfg = GateConfig::default();
        let base = base_rec("audit/det/files", Unit::Count, 50.0);
        let baseline: BTreeMap<&str, &HistoryRecord> = [("audit/det/files", &base)].into();
        // A big drop in a count series is not a T001 (Info direction)…
        let dropped = PerfBlock::new(
            header("det_audit"),
            vec![sample("audit/det/files", Unit::Count, 10.0)],
        );
        let r = run_gate(&[dropped], &[], &baseline, &cfg);
        assert!(r.clean(), "{:?}", r.findings);
        // …but the series vanishing entirely is a T002.
        let r = run_gate(&[], &[], &baseline, &cfg);
        assert_eq!(r.count("T002"), (1, 0));
    }

    #[test]
    fn missing_series_suppressable_and_stale_entries_flagged() {
        let mut cfg = GateConfig::default();
        cfg.allow
            .insert("gone/qps".to_string(), "retired".to_string());
        cfg.overrides
            .insert("never/was/*".to_string(), SeriesOverride::default());
        let base = base_rec("gone/qps", Unit::Qps, 5.0);
        let baseline: BTreeMap<&str, &HistoryRecord> = [("gone/qps", &base)].into();
        let r = run_gate(&[], &[], &baseline, &cfg);
        // T002 present but suppressed; stale [series.…] entry → T004;
        // the allow itself is NOT stale (it matches a baseline series).
        assert_eq!(r.count("T002"), (0, 1));
        assert_eq!(r.count("T004"), (1, 0));
        assert_eq!(r.unsuppressed(), 1);
    }

    #[test]
    fn unit_change_and_duplicates_are_t003() {
        let cfg = GateConfig::default();
        let base = base_rec("a/x", Unit::Ms, 10.0);
        let baseline: BTreeMap<&str, &HistoryRecord> = [("a/x", &base)].into();
        let changed = PerfBlock::new(header("b1"), vec![sample("a/x", Unit::Qps, 10.0)]);
        let dup = PerfBlock::new(header("b2"), vec![sample("a/x", Unit::Qps, 10.0)]);
        let r = run_gate(&[changed, dup], &[], &baseline, &cfg);
        let (open, _) = r.count("T003");
        assert_eq!(open, 2, "{:?}", r.findings); // unit change + duplicate
    }

    #[test]
    fn parse_violations_become_t003() {
        let cfg = GateConfig::default();
        let r = run_gate(
            &[],
            &["bench 'x': bad sample".to_string()],
            &BTreeMap::new(),
            &cfg,
        );
        assert_eq!(r.count("T003"), (1, 0));
        assert!(!r.clean());
    }
}
