//! Dependency-free trend rendering: an aligned text table plus stacked
//! per-family SVG charts, both derived purely from the history (no
//! wall-clock, no randomness — identical history renders identical
//! bytes, which is what lets the text table be golden-pinned).
//!
//! A *family* is the first segment of a series name (`decode`, `kernel`,
//! `serve`, ...). Each family gets one SVG with one stacked panel per
//! series — the multiplot idiom: small aligned panels over a shared run
//! axis beat one overloaded chart.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

use super::history::History;
use super::Unit;

/// How many most-recent runs the text table shows per series.
const TABLE_RUNS: usize = 8;

/// Stroke palette for series panels, cycled by panel index.
const PALETTE: &[&str] = &[
    "#2563eb", "#dc2626", "#059669", "#d97706", "#7c3aed", "#0891b2",
];

/// The family (first path segment) of a series name.
pub fn family_of(series: &str) -> &str {
    series.split('/').next().unwrap_or(series)
}

/// Series names grouped by family, both levels sorted.
pub fn families(history: &History) -> BTreeMap<String, Vec<String>> {
    let mut out: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for series in history.series_points().keys() {
        out.entry(family_of(series).to_string())
            .or_default()
            .push(series.to_string());
    }
    out
}

/// Formats a value compactly but deterministically for the table.
pub fn fmt_value(v: f64) -> String {
    let a = v.abs();
    if v == 0.0 {
        "0".to_string()
    } else if !(1e-3..1e7).contains(&a) {
        format!("{v:.3e}")
    } else if a >= 100.0 {
        format!("{v:.1}")
    } else if a >= 1.0 {
        format!("{v:.3}")
    } else {
        format!("{v:.5}")
    }
}

/// Renders the aligned text trend table: one row per series, one column
/// per run (last [`TABLE_RUNS`] seqs), grouped by family. Deterministic,
/// so it can be golden-pinned.
pub fn trend_table(history: &History) -> String {
    let points = history.series_points();
    let units = history.series_units();
    let mut seqs: Vec<u64> = history.runs().keys().copied().collect();
    if seqs.len() > TABLE_RUNS {
        seqs = seqs[seqs.len() - TABLE_RUNS..].to_vec();
    }

    let mut series_w = "series".len();
    let mut unit_w = "unit".len();
    for (series, unit) in &units {
        series_w = series_w.max(series.len());
        unit_w = unit_w.max(unit.as_str().len());
    }
    let mut col_w: Vec<usize> = Vec::new();
    let mut headers: Vec<String> = Vec::new();
    for seq in &seqs {
        headers.push(format!("run{seq}"));
    }
    for (i, h) in headers.iter().enumerate() {
        let mut w = h.len();
        for pts in points.values() {
            if let Some((_, v)) = pts.iter().find(|(s, _)| *s == seqs[i]) {
                w = w.max(fmt_value(*v).len());
            }
        }
        col_w.push(w);
    }

    let mut out = String::new();
    out.push_str("== perf trends ==\n");
    match (seqs.first(), seqs.last()) {
        (Some(first), Some(last)) => {
            out.push_str(&format!(
                "runs {first}..{last} ({} series, {} runs shown)\n",
                points.len(),
                seqs.len()
            ));
        }
        _ => out.push_str("(empty history)\n"),
    }
    let mut header = format!("{:<series_w$}  {:<unit_w$}", "series", "unit");
    for (h, w) in headers.iter().zip(&col_w) {
        header.push_str(&format!("  {h:>w$}"));
    }
    out.push_str(&header);
    out.push('\n');
    let rule_len = header.len();
    out.push_str(&"-".repeat(rule_len));
    out.push('\n');

    for (fam, members) in families(history) {
        out.push_str(&format!("[{fam}]\n"));
        for series in members {
            let unit = units
                .get(series.as_str())
                .map_or("?", |u: &Unit| u.as_str());
            let mut row = format!("{series:<series_w$}  {unit:<unit_w$}");
            let pts = &points[series.as_str()];
            for (seq, w) in seqs.iter().zip(&col_w) {
                let cell = pts
                    .iter()
                    .find(|(s, _)| s == seq)
                    .map_or_else(|| "-".to_string(), |(_, v)| fmt_value(*v));
                row.push_str(&format!("  {cell:>w$}"));
            }
            out.push_str(&row);
            out.push('\n');
        }
    }
    out
}

fn svg_coord(v: f64) -> String {
    format!("{:.2}", v)
}

/// Renders one family's stacked SVG: a shared run axis, one panel per
/// series with its own y-scale, min/max annotations, and the latest
/// value called out in the panel title.
pub fn family_svg(
    family: &str,
    members: &[String],
    points: &BTreeMap<&str, Vec<(u64, f64)>>,
    units: &BTreeMap<&str, Unit>,
    seqs: &[u64],
) -> String {
    const W: f64 = 640.0;
    const PANEL_H: f64 = 72.0;
    const TOP: f64 = 30.0;
    const PLOT_X0: f64 = 16.0;
    const PLOT_X1: f64 = W - 130.0;

    let height = TOP + members.len() as f64 * (PANEL_H + 10.0) + 8.0;
    let mut svg = String::new();
    svg.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{W}\" height=\"{height}\" \
         viewBox=\"0 0 {W} {height}\">\n"
    ));
    svg.push_str(
        "<style>text{font-family:monospace;font-size:11px;fill:#111}\
         .dim{fill:#666}.title{font-size:13px}</style>\n",
    );
    svg.push_str(&format!(
        "<rect width=\"{W}\" height=\"{height}\" fill=\"#ffffff\"/>\n"
    ));
    let run_span = match (seqs.first(), seqs.last()) {
        (Some(a), Some(b)) => format!("runs {a}..{b}"),
        _ => "no runs".to_string(),
    };
    svg.push_str(&format!(
        "<text class=\"title\" x=\"{PLOT_X0}\" y=\"18\">perf trend \u{2014} {} ({run_span})</text>\n",
        xml_escape(family)
    ));

    let (min_seq, max_seq) = (
        seqs.first().copied().unwrap_or(0) as f64,
        seqs.last().copied().unwrap_or(0) as f64,
    );
    let x_of = |seq: u64| -> f64 {
        if max_seq > min_seq {
            PLOT_X0 + (seq as f64 - min_seq) / (max_seq - min_seq) * (PLOT_X1 - PLOT_X0)
        } else {
            (PLOT_X0 + PLOT_X1) / 2.0
        }
    };

    for (i, series) in members.iter().enumerate() {
        let y0 = TOP + i as f64 * (PANEL_H + 10.0);
        let pts = match points.get(series.as_str()) {
            Some(p) if !p.is_empty() => p,
            _ => continue,
        };
        let unit = units.get(series.as_str()).map_or("?", |u| u.as_str());
        let color = PALETTE[i % PALETTE.len()];
        let (mut lo, mut hi) = (f64::MAX, f64::MIN);
        for (_, v) in pts {
            lo = lo.min(*v);
            hi = hi.max(*v);
        }
        let pad = if hi > lo {
            (hi - lo) * 0.12
        } else {
            lo.abs().max(1.0) * 0.05
        };
        let (lo_p, hi_p) = (lo - pad, hi + pad);
        let plot_y0 = y0 + 16.0;
        let plot_y1 = y0 + PANEL_H;
        let y_of = |v: f64| -> f64 { plot_y1 - (v - lo_p) / (hi_p - lo_p) * (plot_y1 - plot_y0) };

        let latest = pts.last().map(|(_, v)| *v).unwrap_or(0.0);
        svg.push_str(&format!(
            "<text x=\"{PLOT_X0}\" y=\"{}\">{} <tspan class=\"dim\">latest {} {}</tspan></text>\n",
            svg_coord(y0 + 10.0),
            xml_escape(series),
            fmt_value(latest),
            unit,
        ));
        svg.push_str(&format!(
            "<rect x=\"{PLOT_X0}\" y=\"{}\" width=\"{}\" height=\"{}\" fill=\"#f8fafc\" \
             stroke=\"#d4d4d8\" stroke-width=\"1\"/>\n",
            svg_coord(plot_y0),
            svg_coord(PLOT_X1 - PLOT_X0),
            svg_coord(plot_y1 - plot_y0),
        ));
        let coords: Vec<String> = pts
            .iter()
            .map(|(s, v)| format!("{},{}", svg_coord(x_of(*s)), svg_coord(y_of(*v))))
            .collect();
        if coords.len() > 1 {
            svg.push_str(&format!(
                "<polyline points=\"{}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"1.5\"/>\n",
                coords.join(" ")
            ));
        }
        for c in &coords {
            let (x, y) = c.split_once(',').unwrap_or(("0", "0"));
            svg.push_str(&format!(
                "<circle cx=\"{x}\" cy=\"{y}\" r=\"2.2\" fill=\"{color}\"/>\n"
            ));
        }
        svg.push_str(&format!(
            "<text class=\"dim\" x=\"{}\" y=\"{}\">max {}</text>\n",
            svg_coord(PLOT_X1 + 6.0),
            svg_coord(plot_y0 + 9.0),
            fmt_value(hi),
        ));
        svg.push_str(&format!(
            "<text class=\"dim\" x=\"{}\" y=\"{}\">min {}</text>\n",
            svg_coord(PLOT_X1 + 6.0),
            svg_coord(plot_y1 - 2.0),
            fmt_value(lo),
        ));
    }
    svg.push_str("</svg>\n");
    svg
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Renders everything to `dir`: `perf_trends.txt` plus one
/// `trend_<family>.svg` per family. Returns the written paths.
pub fn write_trends(history: &History, dir: &Path) -> io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    let table_path = dir.join("perf_trends.txt");
    std::fs::write(&table_path, trend_table(history))?;
    written.push(table_path);
    let points = history.series_points();
    let units = history.series_units();
    let seqs: Vec<u64> = history.runs().keys().copied().collect();
    for (fam, members) in families(history) {
        let svg = family_svg(&fam, &members, &points, &units, &seqs);
        let path = dir.join(format!("trend_{fam}.svg"));
        std::fs::write(&path, svg)?;
        written.push(path);
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::super::history::{encode_record, History, HistoryRecord};
    use super::*;

    fn history() -> History {
        let mut lines = String::new();
        for (seq, v1, v2) in [(1u64, 100.0, 5.0), (2, 110.0, 4.5), (3, 95.0, 4.8)] {
            for (series, unit, v) in [
                ("decode/batched/tokens_per_sec", Unit::TokensPerSec, v1),
                ("train/step_ms", Unit::Ms, v2),
            ] {
                lines.push_str(&encode_record(&HistoryRecord {
                    seq,
                    series: series.to_string(),
                    unit,
                    value: v,
                    bench: "b".to_string(),
                    preset: None,
                    git_rev: "r".to_string(),
                    hardware_threads: 2,
                }));
                lines.push('\n');
            }
        }
        History::parse(&lines)
    }

    #[test]
    fn table_is_deterministic_and_aligned() {
        let h = history();
        let t1 = trend_table(&h);
        let t2 = trend_table(&h);
        assert_eq!(t1, t2);
        assert!(t1.contains("[decode]"));
        assert!(t1.contains("[train]"));
        assert!(t1.contains("run1"));
        assert!(t1.contains("run3"));
        // Header and rows line up: all non-rule lines inside a family
        // block have the same rendered width for full rows.
        assert!(t1.contains("decode/batched/tokens_per_sec"));
    }

    #[test]
    fn svg_has_one_panel_per_series_and_is_well_formed() {
        let h = history();
        let points = h.series_points();
        let units = h.series_units();
        let seqs: Vec<u64> = h.runs().keys().copied().collect();
        let members = vec!["decode/batched/tokens_per_sec".to_string()];
        let svg = family_svg("decode", &members, &points, &units, &seqs);
        assert!(svg.starts_with("<svg "));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 1);
        assert_eq!(svg.matches("<circle").count(), 3);
        assert!(!svg.contains("NaN"));
    }

    #[test]
    fn single_run_history_renders_without_division_by_zero() {
        let mut h = history();
        h.records.retain(|r| r.seq == 1);
        let points = h.series_points();
        let units = h.series_units();
        let seqs: Vec<u64> = h.runs().keys().copied().collect();
        let members = vec![
            "decode/batched/tokens_per_sec".to_string(),
            "train/step_ms".to_string(),
        ];
        let svg = family_svg("all", &members, &points, &units, &seqs);
        assert!(!svg.contains("NaN"));
        assert!(!svg.contains("inf"));
    }

    #[test]
    fn value_formatting_is_compact() {
        assert_eq!(fmt_value(0.0), "0");
        assert_eq!(fmt_value(16485.985206017824), "16486.0");
        assert_eq!(fmt_value(3.214974), "3.215");
        assert_eq!(fmt_value(0.95), "0.95000");
        assert_eq!(fmt_value(4.752e9), "4.752e9");
    }
}
