//! The append-only perf history: `bench/history.jsonl`.
//!
//! One JSON object per line, one line per series per blessed run. Runs
//! are ordered by a monotonic `seq` assigned at append time — never by
//! wall-clock — so ordering is deterministic, merge conflicts are
//! line-local, and replaying the file reconstructs the full trajectory.
//! Encoding goes through `obs::json` (raw-text numbers), so `u64` values
//! survive without an `f64` round-trip and floats are written with
//! shortest-round-trip formatting.
//!
//! The loader is tolerant by design: lines that fail to parse are
//! counted and skipped (not fatal), and unknown fields are ignored, so a
//! reader from release N survives a writer from release N+1.

use std::collections::BTreeMap;
use std::io;
use std::io::Write as _;
use std::path::Path;

use super::{validate_sample, PerfBlock, PerfSample, Unit};

/// One history line: a sample plus the run context it was measured in.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryRecord {
    /// Monotonic run sequence number; all lines of one blessed run share
    /// it. Full-width `u64` — the encoder must not route it through f64.
    pub seq: u64,
    pub series: String,
    pub unit: Unit,
    pub value: f64,
    /// Which bench bin emitted the series.
    pub bench: String,
    pub preset: Option<String>,
    pub git_rev: String,
    pub hardware_threads: u64,
}

/// The parsed history file.
#[derive(Debug, Clone, Default)]
pub struct History {
    pub records: Vec<HistoryRecord>,
    /// Lines the tolerant loader could not parse (counted, not fatal).
    pub skipped: usize,
}

impl History {
    /// Loads a history file; a missing file is an empty history (the
    /// gate distinguishes "no baseline yet" via [`History::latest_seq`]).
    pub fn load(path: &Path) -> io::Result<History> {
        if !path.exists() {
            return Ok(History::default());
        }
        Ok(History::parse(&std::fs::read_to_string(path)?))
    }

    /// Parses JSONL text, skipping (and counting) malformed lines.
    pub fn parse(text: &str) -> History {
        let mut h = History::default();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            match parse_record(line) {
                Ok(r) => h.records.push(r),
                Err(_) => h.skipped += 1,
            }
        }
        h
    }

    /// The highest run seq present, or `None` for an empty history.
    pub fn latest_seq(&self) -> Option<u64> {
        self.records.iter().map(|r| r.seq).max()
    }

    /// The latest run's records, keyed by series (the gate baseline).
    /// First record wins if a run somehow repeats a series.
    pub fn latest_run(&self) -> BTreeMap<&str, &HistoryRecord> {
        let mut out: BTreeMap<&str, &HistoryRecord> = BTreeMap::new();
        if let Some(latest) = self.latest_seq() {
            for r in self.records.iter().filter(|r| r.seq == latest) {
                out.entry(&r.series).or_insert(r);
            }
        }
        out
    }

    /// All runs, `seq -> records`, in seq order.
    pub fn runs(&self) -> BTreeMap<u64, Vec<&HistoryRecord>> {
        let mut out: BTreeMap<u64, Vec<&HistoryRecord>> = BTreeMap::new();
        for r in &self.records {
            out.entry(r.seq).or_default().push(r);
        }
        out
    }

    /// Per-series trajectory `(seq, value)`, seq-ascending, keyed by
    /// series name (first record wins within a run).
    pub fn series_points(&self) -> BTreeMap<&str, Vec<(u64, f64)>> {
        let mut seen: std::collections::BTreeSet<(&str, u64)> = std::collections::BTreeSet::new();
        let mut out: BTreeMap<&str, Vec<(u64, f64)>> = BTreeMap::new();
        let mut sorted: Vec<&HistoryRecord> = self.records.iter().collect();
        sorted.sort_by_key(|r| r.seq);
        for r in sorted {
            if seen.insert((&r.series, r.seq)) {
                out.entry(&r.series).or_default().push((r.seq, r.value));
            }
        }
        out
    }

    /// The unit each series last reported (latest seq wins), for trend
    /// labels and gate unit checks.
    pub fn series_units(&self) -> BTreeMap<&str, Unit> {
        let mut sorted: Vec<&HistoryRecord> = self.records.iter().collect();
        sorted.sort_by_key(|r| r.seq);
        let mut out = BTreeMap::new();
        for r in sorted {
            out.insert(r.series.as_str(), r.unit);
        }
        out
    }
}

/// Encodes one record as a single JSONL line (no trailing newline).
/// Written by hand over `obs::json::escape` so `seq` keeps full `u64`
/// width and `value` uses shortest-round-trip float text.
pub fn encode_record(r: &HistoryRecord) -> String {
    let preset = match &r.preset {
        Some(p) => obs::json::escape(p),
        None => "null".to_string(),
    };
    format!(
        "{{\"seq\":{},\"series\":{},\"unit\":{},\"value\":{:?},\"bench\":{},\"preset\":{},\"git_rev\":{},\"hardware_threads\":{}}}",
        r.seq,
        obs::json::escape(&r.series),
        obs::json::escape(r.unit.as_str()),
        r.value,
        obs::json::escape(&r.bench),
        preset,
        obs::json::escape(&r.git_rev),
        r.hardware_threads,
    )
}

/// Parses one history line. Unknown fields are ignored; missing or
/// malformed required fields are an error (the tolerant loader skips the
/// line). Non-finite values cannot appear: they are not valid JSON and
/// the encoder refuses them upstream.
pub fn parse_record(line: &str) -> Result<HistoryRecord, String> {
    let v = obs::json::parse(line)?;
    let str_field = |key: &str| -> Result<String, String> {
        v.get(key)
            .and_then(obs::json::Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("missing or non-string '{key}'"))
    };
    let seq = v
        .get("seq")
        .and_then(obs::json::Value::as_u64)
        .ok_or("missing or non-u64 'seq'")?;
    let series = str_field("series")?;
    let unit_str = str_field("unit")?;
    let unit = Unit::parse(&unit_str).ok_or_else(|| format!("unknown unit '{unit_str}'"))?;
    let value = v
        .get("value")
        .and_then(obs::json::Value::as_f64)
        .ok_or("missing or non-numeric 'value'")?;
    let preset = match v.get("preset") {
        None | Some(obs::json::Value::Null) => None,
        Some(p) => Some(
            p.as_str()
                .map(str::to_string)
                .ok_or("non-string 'preset'")?,
        ),
    };
    let rec = HistoryRecord {
        seq,
        series,
        unit,
        value,
        bench: str_field("bench")?,
        preset,
        git_rev: str_field("git_rev")?,
        hardware_threads: v
            .get("hardware_threads")
            .and_then(obs::json::Value::as_u64)
            .unwrap_or(0),
    };
    validate_sample(&PerfSample {
        series: rec.series.clone(),
        unit: rec.unit,
        value: rec.value,
    })?;
    Ok(rec)
}

/// Appends one blessed run (all blocks share the next seq) to the
/// history file, creating it if needed. Returns the assigned seq.
pub fn append_run(path: &Path, blocks: &[PerfBlock]) -> io::Result<u64> {
    let seq = History::load(path)?.latest_seq().map_or(1, |s| s + 1);
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut out = String::new();
    for block in blocks {
        for s in &block.samples {
            validate_sample(s).map_err(io::Error::other)?;
            let rec = HistoryRecord {
                seq,
                series: s.series.clone(),
                unit: s.unit,
                value: s.value,
                bench: block.header.bench.clone(),
                preset: block.header.preset.clone(),
                git_rev: block.header.git_rev.clone(),
                hardware_threads: block.header.hardware_threads,
            };
            out.push_str(&encode_record(&rec));
            out.push('\n');
        }
    }
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    f.write_all(out.as_bytes())?;
    Ok(seq)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64, series: &str, value: f64) -> HistoryRecord {
        HistoryRecord {
            seq,
            series: series.to_string(),
            unit: Unit::TokensPerSec,
            value,
            bench: "decode".to_string(),
            preset: Some("base".to_string()),
            git_rev: "abc1234".to_string(),
            hardware_threads: 8,
        }
    }

    #[test]
    fn record_round_trips() {
        let r = rec(
            u64::MAX,
            "decode/batched/tokens_per_sec",
            16485.985206017824,
        );
        let line = encode_record(&r);
        assert_eq!(parse_record(&line).unwrap(), r);
    }

    #[test]
    fn loader_skips_malformed_lines_and_counts_them() {
        let good = encode_record(&rec(3, "a/b", 1.5));
        let text = format!("{good}\nnot json\n{{\"seq\":1}}\n\n{good}\n");
        let h = History::parse(&text);
        assert_eq!(h.records.len(), 2);
        assert_eq!(h.skipped, 2);
    }

    #[test]
    fn loader_ignores_unknown_fields() {
        let line = r#"{"seq":2,"series":"x/y","unit":"ms","value":1.25,"bench":"b","preset":null,"git_rev":"r","hardware_threads":4,"future_field":[1,2]}"#;
        let r = parse_record(line).unwrap();
        assert_eq!(r.series, "x/y");
        assert_eq!(r.preset, None);
    }

    #[test]
    fn latest_run_takes_the_max_seq() {
        let h = History {
            records: vec![rec(1, "a/b", 1.0), rec(2, "a/b", 2.0), rec(2, "c/d", 3.0)],
            skipped: 0,
        };
        assert_eq!(h.latest_seq(), Some(2));
        let latest = h.latest_run();
        assert_eq!(latest.len(), 2);
        assert_eq!(latest["a/b"].value, 2.0);
    }

    #[test]
    fn append_run_assigns_monotonic_seq() {
        let dir = std::env::temp_dir().join(format!("perf_history_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("history.jsonl");
        let _ = std::fs::remove_file(&path);
        let header = super::super::RunHeader {
            bench: "decode".to_string(),
            preset: None,
            git_rev: "r".to_string(),
            hardware_threads: 2,
        };
        let block = PerfBlock::new(header, vec![super::super::sample("a/b", Unit::Ms, 1.0)]);
        assert_eq!(append_run(&path, std::slice::from_ref(&block)).unwrap(), 1);
        assert_eq!(append_run(&path, &[block]).unwrap(), 2);
        let h = History::load(&path).unwrap();
        assert_eq!(h.records.len(), 2);
        assert_eq!(h.latest_seq(), Some(2));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
