#!/usr/bin/env bash
# Regenerates every paper table and figure into bench/out/.
#
# Usage:   ./crates/bench/run_all.sh [smoke|full]
# Default: full (tens of minutes on one CPU core; checkpoints are cached
#          under target/datavist5-ckpt/, so re-runs are fast).
set -euo pipefail
cd "$(dirname "$0")/../.."

SCALE="${1:-full}"
export DATAVIST5_SCALE="$SCALE"
echo "== DataVisT5 reproduction: running all experiments at scale '$SCALE' =="

cargo build --release -p bench

BINARIES=(
  fig03_04_encoding_examples
  fig05_objectives
  table01_nvbench_stats
  table02_tabletext_stats
  table03_fevisqa_stats
  table04_text_to_vis
  table06_vis_to_text
  table08_fevisqa_table_to_text
  table12_ablation
  table05_case_text_to_vis
  table07_case_vis_to_text
  table10_case_fevisqa
  table11_case_table_to_text
  ablation_decoding
)

for bin in "${BINARIES[@]}"; do
  echo
  echo "== running $bin =="
  time "./target/release/$bin"
done

echo
echo "All reports written to bench/out/."
