#!/usr/bin/env python3
"""Assembles EXPERIMENTS.md from the reports in bench/out/.

Each `<!-- TABLEXX -->` placeholder in EXPERIMENTS.md is replaced with the
corresponding report, fenced as a code block. Run after
`./crates/bench/run_all.sh`.
"""
import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parents[2]
OUT = ROOT / "bench" / "out"
DOC = ROOT / "EXPERIMENTS.md"

MAPPING = {
    "<!-- TABLE01 -->": "table01_nvbench_stats.txt",
    "<!-- TABLE02 -->": "table02_tabletext_stats.txt",
    "<!-- TABLE03 -->": "table03_fevisqa_stats.txt",
    "<!-- TABLE04 -->": "table04_text_to_vis.txt",
    "<!-- TABLE05 -->": "table05_case_text_to_vis.txt",
    "<!-- TABLE06 -->": "table06_vis_to_text.txt",
    "<!-- TABLE07 -->": "table07_case_vis_to_text.txt",
    "<!-- TABLE08 -->": "table08_fevisqa_table_to_text.txt",
    "<!-- TABLE10 -->": "table10_case_fevisqa.txt",
    "<!-- TABLE11 -->": "table11_case_table_to_text.txt",
    "<!-- TABLE12 -->": "table12_ablation.txt",
    "<!-- FIGURES -->": "fig05_objectives.txt",
}


def main() -> int:
    text = DOC.read_text()
    missing = []
    for marker, fname in MAPPING.items():
        path = OUT / fname
        if not path.exists():
            missing.append(fname)
            continue
        block = f"```text\n{path.read_text().rstrip()}\n```"
        # Replace the marker or a previously inserted block after it.
        text = re.sub(re.escape(marker) + r"(\n```text\n.*?\n```)?", marker + "\n" + block,
                      text, count=1, flags=re.S)
    DOC.write_text(text)
    if missing:
        print(f"warning: missing reports: {', '.join(missing)}", file=sys.stderr)
    print(f"EXPERIMENTS.md assembled from {len(MAPPING) - len(missing)} reports")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
