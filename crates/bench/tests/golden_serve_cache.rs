//! Golden-pinned cache event stream for one schema-skewed serving
//! trace.
//!
//! The prefix cache's determinism claim gets the same anchor the
//! scheduler got: a 90%-reuse `TraceSpec::smoke` trace through the
//! scripted decoder with an event-logged cache must render the exact
//! admission log, per-event hit/miss/evict/bypass stream, and final
//! code tallies committed at `bench/golden/serve_cache_smoke.txt`. Any
//! change to keying, recency bumping, pin bookkeeping, or eviction
//! order shows up as a diff here, not as a silent behavior change.
//! Every event code is cross-checked against `analysis::registry`
//! (family `cache`), so the golden cannot pin an unregistered code.
//! Regenerate with `GOLDEN_BLESS=1 cargo test -p bench --test
//! golden_serve_cache`.

use std::fmt::Write as _;
use std::path::PathBuf;

use bench::trace::{serve_trace, TraceSpec};
use serve::{PrefixCache, ScriptedDecoder, ServeConfig, ServeEngine};

const EOS: u32 = 1;
const VOCAB: usize = 128;
/// Small enough that the 90%-reuse working set does not all fit —
/// the golden stream must exercise eviction as well as hits (at this
/// budget the smoke trace produces both).
const CACHE_BYTES: usize = 2048;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../bench/golden")
        .join("serve_cache_smoke.txt")
}

#[test]
fn cache_event_stream_matches_golden() {
    let spec = TraceSpec::smoke(0x90de, 24, VOCAB).with_reuse(90);
    let trace = serve_trace(&spec);
    let dec = ScriptedDecoder::new(2, VOCAB, EOS, |src| vec![src[0]; src.len() % 5 + 1])
        .with_prefix_cache(PrefixCache::new(CACHE_BYTES).with_event_log());
    let mut engine = ServeEngine::new(dec, ServeConfig::new(16, 8, EOS));
    engine
        .run_trace(&trace)
        .expect("golden trace never poisons");

    let cache = engine
        .decoder_mut()
        .prefix_cache_mut()
        .expect("decoder carries a cache");
    let events = cache.take_events();
    let stats = cache.stats();
    assert_eq!(cache.pinned_entries(), 0, "run left a pin behind");
    cache.audit();
    assert!(stats.hits > 0, "90% reuse must produce hits");
    assert!(stats.evictions > 0, "the tiny budget must evict");

    let report = engine.into_report();
    assert!(report.accounted());
    assert_eq!(
        report.cache.expect("report carries cache tallies"),
        stats,
        "report tallies disagree with the cache's own"
    );

    let mut rendered = String::new();
    let _ = writeln!(
        rendered,
        "# serve cache smoke (seed=0x90de, n=24, reuse=90%, slots=2, \
         queue=16, cache_bytes={CACHE_BYTES})"
    );
    let _ = writeln!(rendered, "# admissions");
    for rec in &report.admission_log {
        let _ = writeln!(rendered, "admit {}", rec.render());
    }
    let _ = writeln!(rendered, "# cache events");
    for ev in &events {
        let entry = analysis::registry::lookup(ev.code)
            .unwrap_or_else(|| panic!("cache event code {} is unregistered", ev.code));
        assert_eq!(
            entry.family, "cache",
            "{} is registered under family {:?}, not cache",
            ev.code, entry.family
        );
        let _ = writeln!(rendered, "{} hash={:016x}", ev.code, ev.hash);
    }
    let _ = writeln!(rendered, "# tallies");
    for (code, count) in stats.code_tallies() {
        let summary = analysis::registry::lookup(code).unwrap().summary;
        let _ = writeln!(rendered, "{code} {count} ({summary})");
    }
    let _ = writeln!(
        rendered,
        "# totals lookups={} hit_rate={:.3} insertions={} completed={}",
        stats.lookups(),
        stats.hit_rate(),
        stats.insertions,
        report.completed
    );

    let path = golden_path();
    if std::env::var("GOLDEN_BLESS").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run with GOLDEN_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        rendered, committed,
        "cache event stream diverged from the committed golden; \
         if the change is intentional, regenerate with GOLDEN_BLESS=1"
    );
}
