//! Golden-pinned admission log for one small seeded serving trace.
//!
//! The scheduler's determinism claim is only as strong as its anchor:
//! the double-run tests prove *self*-consistency, this test pins the
//! actual bytes. One `TraceSpec::smoke` trace through the scripted
//! decoder must render the exact admission log and outcome summary
//! committed at `bench/golden/serve_admission_smoke.txt` — any change
//! to queue ordering, slot assignment, deadline handling, or the
//! virtual-clock arithmetic shows up as a diff here, not as a silent
//! behavior change. Regenerate with `GOLDEN_BLESS=1 cargo test -p bench
//! --test golden_serve`.

use std::fmt::Write as _;
use std::path::PathBuf;

use bench::trace::{serve_trace, TraceSpec};
use serve::{Outcome, ScriptedDecoder, ServeConfig, ServeEngine};

const EOS: u32 = 1;
const VOCAB: usize = 128;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../bench/golden")
        .join("serve_admission_smoke.txt")
}

#[test]
fn admission_log_matches_golden() {
    let spec = TraceSpec::smoke(0x90de, 16, VOCAB);
    let trace = serve_trace(&spec);
    // Script: each request emits (src_len % 5) + 1 copies of its first
    // token — output length and content both depend on the source, so
    // the golden log also pins the src → script plumbing.
    let dec = ScriptedDecoder::new(2, VOCAB, EOS, |src| vec![src[0]; src.len() % 5 + 1]);
    let mut engine = ServeEngine::new(dec, ServeConfig::new(4, 8, EOS));
    engine
        .run_trace(&trace)
        .expect("golden trace never poisons");
    let report = engine.into_report();
    assert!(report.accounted());

    let mut rendered = String::new();
    let _ = writeln!(
        rendered,
        "# serve admission log (seed=0x90de, n=16, slots=2, queue=4)"
    );
    for rec in &report.admission_log {
        let _ = writeln!(rendered, "admit {}", rec.render());
    }
    let _ = writeln!(rendered, "# outcomes");
    for r in &report.responses {
        let outcome = match r.outcome {
            Outcome::Completed => "completed".to_string(),
            Outcome::Rejected(rej) => rej.code().to_string(),
        };
        let _ = writeln!(
            rendered,
            "resp id={} task={} outcome={outcome} tokens={}",
            r.id,
            r.task.label(),
            r.tokens.len()
        );
    }
    let _ = writeln!(
        rendered,
        "# totals arrivals={} completed={} rejected={} end_ms={}",
        report.arrivals,
        report.completed,
        report.rejections(),
        report.end_ns / 1_000_000
    );

    let path = golden_path();
    if std::env::var("GOLDEN_BLESS").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run with GOLDEN_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        rendered, committed,
        "scheduler admission log diverged from the committed golden; \
         if the change is intentional, regenerate with GOLDEN_BLESS=1"
    );
}
