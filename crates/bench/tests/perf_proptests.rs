//! Property tests for the perf-trajectory harness.
//!
//! History encoding (`bench::perf::history`) must round-trip *exactly*:
//! full-width `u64` seq values (no f64 detour), shortest-round-trip
//! floats, and context strings containing anything `obs::json::escape`
//! can carry — quotes, backslashes, newlines, non-ASCII. The gate
//! (`bench::perf::gate`) must treat its tolerance band as a strict
//! inequality (the band edge itself passes), flag every vanished
//! baseline series (T002), and flag every config entry that matches
//! nothing (T004) — under arbitrary series inventories, not just the
//! handful the unit tests pin.

use std::collections::BTreeMap;

use bench::perf::gate::{run_gate, GateConfig, SeriesOverride};
use bench::perf::history::{encode_record, parse_record, History, HistoryRecord};
use bench::perf::{sample, PerfBlock, RunHeader, Unit};
use proptest::prelude::*;

/// A schema-valid slash-separated series name.
fn series_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec("[a-zA-Z0-9._-]{1,8}", 1..4).prop_map(|segs| segs.join("/"))
}

/// Context strings (bench, git_rev, preset) are *not* restricted to the
/// series grammar — anything the JSON escaper can carry must round-trip.
fn nasty_string_strategy() -> impl Strategy<Value = String> {
    let chars = vec![
        'a', 'Z', '7', '"', '\\', '\n', '\t', '\r', '/', ' ', '{', '}', ':', ',', 'µ', '≤', '\0',
    ];
    prop::collection::vec(prop::sample::select(chars), 0..16)
        .prop_map(|cs| cs.into_iter().collect())
}

/// Any finite f64, negative and subnormal included (non-finite bit
/// patterns collapse to 0.0 — the schema refuses them upstream).
fn finite_f64_strategy() -> impl Strategy<Value = f64> {
    any::<u64>().prop_map(|bits| {
        let x = f64::from_bits(bits);
        if x.is_finite() {
            x
        } else {
            0.0
        }
    })
}

fn unit_strategy() -> impl Strategy<Value = Unit> {
    prop::sample::select(vec![
        Unit::TokensPerSec,
        Unit::Qps,
        Unit::FlopsPerSec,
        Unit::BytesPerSec,
        Unit::Ms,
        Unit::Ratio,
        Unit::Count,
    ])
}

fn record_strategy() -> impl Strategy<Value = HistoryRecord> {
    (
        any::<u64>(),
        series_strategy(),
        unit_strategy(),
        finite_f64_strategy(),
        nasty_string_strategy(),
        prop_oneof![Just(None), nasty_string_strategy().prop_map(Some)],
        nasty_string_strategy(),
        any::<u64>(),
    )
        .prop_map(
            |(seq, series, unit, value, bench, preset, git_rev, hardware_threads)| HistoryRecord {
                seq,
                series,
                unit,
                value,
                bench,
                preset,
                git_rev,
                hardware_threads,
            },
        )
}

proptest! {
    /// encode → parse is the identity, bit patterns and full-width
    /// integers included.
    #[test]
    fn history_record_round_trips(rec in record_strategy()) {
        let line = encode_record(&rec);
        prop_assert!(!line.contains('\n'), "JSONL line must stay one line: {line:?}");
        let back = parse_record(&line).map_err(TestCaseError::new)?;
        prop_assert_eq!(back.seq, rec.seq, "u64 seq must not round through f64");
        prop_assert_eq!(back.hardware_threads, rec.hardware_threads);
        prop_assert!(
            back.value.to_bits() == rec.value.to_bits() || back.value == rec.value,
            "value drifted: {} -> {}", rec.value, back.value
        );
        prop_assert_eq!(back, rec);
    }

    /// The tolerant loader recovers every well-formed line no matter
    /// what garbage is interleaved, and counts exactly the garbage.
    #[test]
    fn loader_survives_interleaved_garbage(
        recs in prop::collection::vec(record_strategy(), 1..8),
        garbage in prop::collection::vec(
            prop_oneof![
                Just("not json at all".to_string()),
                Just("{\"seq\":1}".to_string()),
                Just("{\"seq\":2,\"series\":\"//\",\"unit\":\"ms\",\"value\":1,\"bench\":\"b\",\"git_rev\":\"r\"}".to_string()),
                nasty_string_strategy(),
            ],
            0..6,
        ),
    ) {
        let mut text = String::new();
        let mut expect_skipped = 0;
        for (i, r) in recs.iter().enumerate() {
            text.push_str(&encode_record(r));
            text.push('\n');
            if let Some(g) = garbage.get(i) {
                // A nasty string may contain newlines: each non-empty,
                // non-parsing line counts once.
                expect_skipped += g
                    .lines()
                    .filter(|l| !l.trim().is_empty() && parse_record(l.trim()).is_err())
                    .count();
                text.push_str(g);
                text.push('\n');
            }
        }
        let h = History::parse(&text);
        prop_assert_eq!(h.records.len(), recs.len());
        prop_assert_eq!(h.skipped, expect_skipped);
        for (got, want) in h.records.iter().zip(&recs) {
            prop_assert_eq!(got, want);
        }
    }

    /// `latest_run` always picks the maximum seq, even at u64::MAX.
    #[test]
    fn latest_run_tracks_max_seq(
        seqs in prop::collection::vec(any::<u64>(), 1..10),
    ) {
        let records: Vec<HistoryRecord> = seqs
            .iter()
            .map(|&seq| HistoryRecord {
                seq,
                series: "a/b".to_string(),
                unit: Unit::Ms,
                value: 1.0,
                bench: "b".to_string(),
                preset: None,
                git_rev: "r".to_string(),
                hardware_threads: 1,
            })
            .collect();
        let h = History { records, skipped: 0 };
        let max = seqs.iter().copied().max().unwrap();
        prop_assert_eq!(h.latest_seq(), Some(max));
        prop_assert_eq!(h.latest_run()["a/b"].seq, max);
    }
}

fn header(bench: &str) -> RunHeader {
    RunHeader {
        bench: bench.to_string(),
        preset: None,
        git_rev: "r".to_string(),
        hardware_threads: 2,
    }
}

fn base_rec(series: &str, unit: Unit, value: f64) -> HistoryRecord {
    HistoryRecord {
        seq: 1,
        series: series.to_string(),
        unit,
        value,
        bench: "b".to_string(),
        preset: None,
        git_rev: "r".to_string(),
        hardware_threads: 2,
    }
}

proptest! {
    /// The band edge is exact: `base * (1 - tol)` passes, one ulp below
    /// it regresses (direction up; mirrored for down).
    #[test]
    fn gate_band_edge_is_exact(
        base in 1e-3f64..1e9,
        tol in 0.0f64..0.9,
    ) {
        let mut cfg = GateConfig::default();
        cfg.overrides.insert(
            "d/tps".to_string(),
            SeriesOverride { tol: Some(tol), dir: None },
        );
        let rec = base_rec("d/tps", Unit::TokensPerSec, base);
        let baseline: BTreeMap<&str, &HistoryRecord> = [("d/tps", &rec)].into();

        let edge = base * (1.0 - tol);
        let at = PerfBlock::new(header("d"), vec![sample("d/tps", Unit::TokensPerSec, edge)]);
        let r = run_gate(&[at], &[], &baseline, &cfg);
        prop_assert_eq!(r.count("T001"), (0, 0), "edge value must pass: {:?}", r.findings);

        let below = f64::from_bits(edge.to_bits() - 1);
        let under = PerfBlock::new(header("d"), vec![sample("d/tps", Unit::TokensPerSec, below)]);
        let r = run_gate(&[under], &[], &baseline, &cfg);
        prop_assert_eq!(r.count("T001"), (1, 0), "one ulp below must regress");

        // Mirrored for lower-is-better: the upper edge passes, one ulp
        // above regresses.
        let mut cfg_down = GateConfig::default();
        cfg_down.overrides.insert(
            "d/tps".to_string(),
            SeriesOverride { tol: Some(tol), dir: Some(bench::perf::Direction::Lower) },
        );
        let upper = base * (1.0 + tol);
        let at = PerfBlock::new(header("d"), vec![sample("d/tps", Unit::TokensPerSec, upper)]);
        let r = run_gate(&[at], &[], &baseline, &cfg_down);
        prop_assert_eq!(r.count("T001"), (0, 0), "upper edge must pass: {:?}", r.findings);
        let above = f64::from_bits(upper.to_bits() + 1);
        let over = PerfBlock::new(header("d"), vec![sample("d/tps", Unit::TokensPerSec, above)]);
        let r = run_gate(&[over], &[], &baseline, &cfg_down);
        prop_assert_eq!(r.count("T001"), (1, 0), "one ulp above must regress");
    }

    /// Every dropped baseline series yields exactly one T002; allowed
    /// drops are suppressed but still counted; nothing else fires.
    #[test]
    fn gate_flags_every_vanished_series(
        names in prop::collection::vec(series_strategy(), 1..8),
        drop_mask in prop::collection::vec(0u8..4, 8),
        allow_mask in prop::collection::vec(0u8..2, 8),
    ) {
        // Dedup: series names are unique per run by contract.
        let mut names = names;
        names.sort();
        names.dedup();

        let mut cfg = GateConfig::default();
        let records: Vec<HistoryRecord> = names
            .iter()
            .map(|n| base_rec(n, Unit::Qps, 10.0))
            .collect();
        let baseline: BTreeMap<&str, &HistoryRecord> =
            records.iter().map(|r| (r.series.as_str(), r)).collect();

        let mut kept = Vec::new();
        let mut dropped = 0usize;
        let mut allowed = 0usize;
        for (i, n) in names.iter().enumerate() {
            if drop_mask[i] == 0 {
                dropped += 1;
                if allow_mask[i] == 1 {
                    allowed += 1;
                    cfg.allow.insert(n.clone(), "retired on purpose".to_string());
                }
            } else {
                kept.push(sample(n, Unit::Qps, 10.0));
            }
        }
        let blocks = if kept.is_empty() {
            vec![]
        } else {
            vec![PerfBlock::new(header("b"), kept)]
        };
        let r = run_gate(&blocks, &[], &baseline, &cfg);
        prop_assert_eq!(r.count("T002"), (dropped - allowed, allowed));
        prop_assert_eq!(r.count("T001"), (0, 0));
        prop_assert_eq!(r.count("T003"), (0, 0));
        // Every allow entry matches a baseline series, so none is stale.
        prop_assert_eq!(r.count("T004"), (0, 0));
        prop_assert_eq!(r.checked, names.len() - dropped);
    }

    /// A config entry naming a series nobody emits is always a T004 —
    /// exact and wildcard overrides alike, and allows matching neither
    /// current nor baseline.
    #[test]
    fn gate_flags_stale_config_entries(
        live in series_strategy(),
        ghost in series_strategy(),
    ) {
        // `ghost` must not collide with (or wildcard-match) `live`.
        if ghost == live || live.starts_with(&format!("{ghost}/")) {
            return Ok(());
        }
        let mut cfg = GateConfig::default();
        cfg.overrides.insert(ghost.clone(), SeriesOverride { tol: Some(0.2), dir: None });
        cfg.overrides.insert(format!("{ghost}/*"), SeriesOverride { tol: Some(0.2), dir: None });
        cfg.allow.insert(format!("{ghost}.allow-only"), "no such series".to_string());

        let rec = base_rec(&live, Unit::Ms, 5.0);
        let baseline: BTreeMap<&str, &HistoryRecord> = [(live.as_str(), &rec)].into();
        let blocks = vec![PerfBlock::new(header("b"), vec![sample(&live, Unit::Ms, 5.0)])];
        let r = run_gate(&blocks, &[], &baseline, &cfg);
        // Exact ghost override + wildcard ghost override + ghost allow.
        prop_assert_eq!(r.count("T004"), (3, 0), "{:?}", r.findings);
        prop_assert_eq!(r.count("T001"), (0, 0));
        prop_assert_eq!(r.count("T002"), (0, 0));
    }
}
