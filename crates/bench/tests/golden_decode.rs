//! Golden + differential regression tests of the batched eval path.
//!
//! Two guarantees, both at Smoke scale with deterministic random-weight
//! models (the committed `bench/out/table04_text_to_vis.txt` is a
//! Full-scale artifact that takes hours of training to regenerate; these
//! tests lock the same eval pipeline at a scale a test can afford —
//! DESIGN.md records the rationale):
//!
//! 1. `batched_eval_matches_sequential_on_all_four_tasks` — every task's
//!    eval harness produces *identical scores* whether predictions come
//!    from the batched inference engine or from per-example sequential
//!    decoding, across all three neural predictor flavors (plain greedy,
//!    grammar-constrained, retrieval-augmented).
//! 2. `table04_smoke_rendering_matches_golden` — the Table IV-format
//!    report, re-rendered through the batched eval path, is byte-identical
//!    to the committed golden file `bench/golden/table04_smoke_decode.txt`.
//!    Regenerate with `GOLDEN_BLESS=1 cargo test -p bench`.

use std::path::PathBuf;

use bench::{m4, Report};
use corpus::Split;
use datavist5::config::{Scale, Size};
use datavist5::data::{Task, TaskExample};
use datavist5::eval::{eval_text_gen, eval_text_to_vis};
use datavist5::zoo::{ModelKind, Predictor, Trained, Zoo};
use nn::param::ParamSet;
use nn::t5::T5Model;
use tensor::XorShift;

/// A deterministic random-weight model wrapped as a trained system. Eval
/// equivalence and rendering stability do not depend on what the weights
/// say — only that both decode paths see the same ones.
fn random_trained(zoo: &Zoo, seed: u64) -> Trained {
    let mut ps = ParamSet::new();
    let mut rng = XorShift::new(seed);
    let cfg = Scale::Smoke.t5_config(Size::Base, zoo.tok.vocab().len());
    let model = T5Model::new(&mut ps, "golden", cfg, &mut rng);
    Trained::T5 {
        model: Box::new(model),
        ps,
    }
}

/// Hides a predictor's `predict_batch` override so every prediction goes
/// through the sequential per-example decode path.
struct SequentialOnly<'a>(&'a dyn Predictor);

impl Predictor for SequentialOnly<'_> {
    fn predict(&self, example: &TaskExample) -> String {
        self.0.predict(example)
    }
}

/// The three predictor flavors with batched overrides, on independently
/// seeded models.
fn flavors(zoo: &Zoo) -> Vec<(&'static str, Box<dyn Predictor + '_>)> {
    vec![
        (
            "greedy",
            zoo.predictor(ModelKind::Transformer, random_trained(zoo, 0x601d)),
        ),
        (
            "constrained",
            zoo.predictor(ModelKind::NcNet, random_trained(zoo, 0x602d)),
        ),
        (
            "retrieval",
            zoo.predictor(ModelKind::RgVisNet, random_trained(zoo, 0x603d)),
        ),
    ]
}

#[test]
fn batched_eval_matches_sequential_on_all_four_tasks() {
    let zoo = Zoo::new(Scale::Smoke);
    let cap = Scale::Smoke.eval_cap();

    // Text-to-vis: all three predictor flavors.
    let examples = zoo.datasets.of(Task::TextToVis, Split::Test);
    for (name, p) in flavors(&zoo) {
        let batched = eval_text_to_vis(&*p, &examples, &zoo.corpus, cap);
        let sequential = eval_text_to_vis(&SequentialOnly(&*p), &examples, &zoo.corpus, cap);
        assert_eq!(batched, sequential, "{name} diverged on text-to-vis");
    }

    // The three generative tasks: the plain greedy predictor.
    let p = zoo.predictor(ModelKind::Transformer, random_trained(&zoo, 0x604d));
    for task in [Task::VisToText, Task::FeVisQa, Task::TableToText] {
        let examples = zoo.datasets.of(task, Split::Test);
        let batched = eval_text_gen(&*p, &examples, cap);
        let sequential = eval_text_gen(&SequentialOnly(&*p), &examples, cap);
        assert_eq!(batched, sequential, "{task:?} diverged");
    }
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../bench/golden")
        .join("table04_smoke_decode.txt")
}

#[test]
fn table04_smoke_rendering_matches_golden() {
    let zoo = Zoo::new(Scale::Smoke);
    let cap = Scale::Smoke.eval_cap();
    let examples = zoo.datasets.of(Task::TextToVis, Split::Test);

    let widths = [14usize, 9, 9, 9, 9, 9, 9, 9, 9];
    let mut r = Report::new("Table IV smoke golden — batched eval path, random-weight models");
    r.line(format!(
        "test examples: {} | eval cap per subset: {cap}",
        examples.len()
    ));
    r.row(
        &widths,
        &[
            "Predictor",
            "nj Vis",
            "nj Axis",
            "nj Data",
            "nj EM",
            "j Vis",
            "j Axis",
            "j Data",
            "j EM",
        ],
    );
    r.rule(&widths);
    for (name, p) in flavors(&zoo) {
        let s = eval_text_to_vis(&*p, &examples, &zoo.corpus, cap);
        let (nj, j) = (s.non_join, s.join);
        r.row(
            &widths,
            &[
                name,
                &m4(nj.vis_em),
                &m4(nj.axis_em),
                &m4(nj.data_em),
                &m4(nj.em),
                &m4(j.vis_em),
                &m4(j.axis_em),
                &m4(j.data_em),
                &m4(j.em),
            ],
        );
        r.line(format!("  lints: {}", s.lints));
    }
    let rendered = r.render();

    let path = golden_path();
    if std::env::var("GOLDEN_BLESS").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run with GOLDEN_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        rendered, committed,
        "batched eval rendering diverged from the committed golden; \
         if the change is intentional, regenerate with GOLDEN_BLESS=1"
    );
}
