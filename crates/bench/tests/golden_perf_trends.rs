//! Golden test of the perf trend renderer: the text trend table over a
//! committed history fixture is byte-identical to
//! `bench/golden/perf_trends.txt`, and the per-family SVGs are
//! well-formed with one panel per series. The fixture
//! (`perf_history_fixture.jsonl`) is hand-written history covering a
//! series that collapses then recovers (`decode/sweep/worst_step_ratio`
//! — the shape of the 4-thread regression this harness exists to
//! catch), a series that joins mid-history (`train/step_ms`), and four
//! families. Regenerate the golden with `GOLDEN_BLESS=1 cargo test -p
//! bench`.

use std::path::PathBuf;

use bench::perf::history::History;
use bench::perf::trend::{families, trend_table, write_trends};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../bench/golden")
}

fn fixture() -> History {
    let path = golden_dir().join("perf_history_fixture.jsonl");
    let h = History::load(&path).expect("read fixture");
    assert_eq!(h.skipped, 0, "fixture must be fully well-formed");
    assert!(!h.records.is_empty(), "fixture must not be empty");
    h
}

#[test]
fn trend_table_matches_golden() {
    let rendered = trend_table(&fixture());

    let path = golden_dir().join("perf_trends.txt");
    if std::env::var("GOLDEN_BLESS").is_ok() {
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run with GOLDEN_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        rendered, committed,
        "trend table diverged from the committed golden; if the change \
         is intentional, regenerate with GOLDEN_BLESS=1"
    );
}

#[test]
fn fixture_svgs_are_well_formed_with_one_panel_per_series() {
    let h = fixture();
    let dir = std::env::temp_dir().join(format!("perf_trend_golden_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let written = write_trends(&h, &dir).expect("render trends");

    let fams = families(&h);
    // One SVG per family plus the text table.
    assert_eq!(written.len(), fams.len() + 1);
    for (family, members) in &fams {
        let svg_path = dir.join(format!("trend_{family}.svg"));
        assert!(
            written.contains(&svg_path),
            "missing {}",
            svg_path.display()
        );
        let svg = std::fs::read_to_string(&svg_path).unwrap();
        assert!(svg.starts_with("<svg"), "{family}: not an SVG");
        assert!(svg.trim_end().ends_with("</svg>"), "{family}: unterminated");
        assert!(!svg.contains("NaN"), "{family}: NaN leaked into geometry");
        for series in members {
            assert!(
                svg.contains(series.as_str()),
                "{family}: panel label for '{series}' missing"
            );
        }
        assert_eq!(
            svg.matches("<polyline").count(),
            members.len(),
            "{family}: one polyline per series"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn rendering_is_deterministic() {
    let h = fixture();
    assert_eq!(trend_table(&h), trend_table(&h));
}
