//! Cross-checks the lint-code registry (`analysis::registry::CODES`)
//! against the documentation table in `DESIGN.md`: every emittable code
//! must be documented, every documented code must be emittable, and the
//! families must agree. This is what keeps a new lint from shipping
//! undocumented — or a doc row from outliving its lint.

use std::collections::BTreeMap;

use analysis::registry::CODES;
use bench::workspace_root;

/// Parses the `## Lint-code registry` table out of DESIGN.md into
/// `code -> family`.
fn documented_codes() -> BTreeMap<String, String> {
    let path = workspace_root().join("DESIGN.md");
    let text = std::fs::read_to_string(&path).expect("read DESIGN.md");
    let section = text
        .split("## Lint-code registry")
        .nth(1)
        .expect("DESIGN.md must have a '## Lint-code registry' section")
        .split("\n## ")
        .next()
        .unwrap();

    let mut codes = BTreeMap::new();
    for line in section.lines() {
        let cells: Vec<&str> = line
            .trim()
            .trim_matches('|')
            .split('|')
            .map(str::trim)
            .collect();
        if cells.len() < 3 {
            continue;
        }
        let code = cells[0];
        // Rows look like `| P010 | sched | … |`; skip the header and rule.
        if code.len() == 4
            && code.starts_with(|c: char| c.is_ascii_uppercase())
            && code[1..].chars().all(|c| c.is_ascii_digit())
        {
            codes.insert(code.to_string(), cells[1].to_string());
        }
    }
    codes
}

#[test]
fn every_registered_code_is_documented_with_matching_family() {
    let documented = documented_codes();
    for entry in CODES {
        match documented.get(entry.code) {
            None => panic!(
                "{} is emittable (analysis::registry) but missing from the \
                 DESIGN.md lint-code registry table",
                entry.code
            ),
            Some(family) => assert_eq!(
                family, entry.family,
                "{}: DESIGN.md says family '{family}', registry says '{}'",
                entry.code, entry.family
            ),
        }
    }
}

#[test]
fn every_documented_code_is_registered() {
    for (code, _) in documented_codes() {
        assert!(
            analysis::registry::lookup(&code).is_some(),
            "DESIGN.md documents {code} but no subsystem registers it — \
             remove the row or register the code"
        );
    }
}

#[test]
fn vql_validator_codes_match_the_registry() {
    // The VQL validator lives outside `analysis`, so spot-check its codes
    // against the registry by family.
    let vql: Vec<&str> = CODES
        .iter()
        .filter(|e| e.family == "vql")
        .map(|e| e.code)
        .collect();
    assert_eq!(vql, ["V001", "V002", "V003", "V004", "V005", "V006"]);
}

#[test]
fn hot_auditor_codes_match_the_registry() {
    // The H family must stay in lockstep across analysis::hot::HotCounts,
    // the registry, and the DESIGN.md table (checked by the tests above).
    let hot: Vec<&str> = CODES
        .iter()
        .filter(|e| e.family == "hot")
        .map(|e| e.code)
        .collect();
    assert_eq!(
        hot,
        ["H000", "H001", "H002", "H003", "H004", "H005", "H009"]
    );
}

#[test]
fn perf_gate_codes_match_the_registry() {
    // The T family must stay in lockstep across bench::perf::gate, the
    // registry, and the DESIGN.md table (checked by the tests above).
    let perf: Vec<&str> = CODES
        .iter()
        .filter(|e| e.family == "perf")
        .map(|e| e.code)
        .collect();
    assert_eq!(perf, ["T001", "T002", "T003", "T004"]);
}

#[test]
fn registry_covers_all_families() {
    let families: std::collections::BTreeSet<&str> = CODES.iter().map(|e| e.family).collect();
    for family in [
        "shape", "flow", "sanitize", "vql", "det", "order", "par", "sched", "hot", "serve",
        "cache", "perf",
    ] {
        assert!(
            families.contains(family),
            "no codes registered for {family}"
        );
    }
}
