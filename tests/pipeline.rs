//! Cross-crate integration tests of the encoding pipeline: corpus →
//! filtration → unified encoding → standardization → execution →
//! chart/metrics consistency.

use datavist5_repro::corpus::{Corpus, CorpusConfig, Split};
use datavist5_repro::datavist5::data::{Task, TaskDatasets};
use datavist5_repro::datavist5::filter_schema;
use datavist5_repro::datavist5::pretrain::{dv_knowledge_docs, PretrainData};
use datavist5_repro::metrics;
use datavist5_repro::storage;
use datavist5_repro::tokenizer::WordTokenizer;
use datavist5_repro::vql;

fn corpus() -> Corpus {
    Corpus::generate(&CorpusConfig {
        seed: 99,
        dbs_per_domain: 1,
        queries_per_db: 8,
        facts_per_db: 4,
    })
}

#[test]
fn every_gold_query_roundtrips_through_the_whole_stack() {
    let corpus = corpus();
    for e in &corpus.nvbench {
        let db = corpus.database(&e.db_name).unwrap();
        let schema = db.schema();
        // Parse -> standardize -> print -> parse: fixpoint.
        let q = vql::parse_query(&e.query).unwrap();
        let std_q = vql::standardize(&q, &schema);
        assert_eq!(std_q, q, "corpus queries are already standardized");
        // Execute -> chart -> vega: total.
        let result = storage::execute(&q, db).unwrap();
        let chart = storage::to_chart(&q, &result);
        assert!(chart.part_count() > 0);
        let spec = vql::vega::to_vega_lite(&q, &chart);
        assert!(spec["mark"].is_string());
        // FeVisQA consistency: total of chart equals sum over values.
        let manual: f64 = chart.values().sum();
        assert!((manual - chart.total()).abs() < 1e-9);
    }
}

#[test]
fn filtration_never_loses_gold_query_tables() {
    let corpus = corpus();
    for e in &corpus.nvbench {
        let db = corpus.database(&e.db_name).unwrap();
        let schema = db.schema();
        let filtered = filter_schema(&e.question, &schema);
        let q = vql::parse_query(&e.query).unwrap();
        for t in q.tables() {
            assert!(
                filtered.table(t).is_some(),
                "filtration dropped table '{t}' needed by gold query for: {}",
                e.question
            );
        }
    }
}

#[test]
fn tokenizer_roundtrips_every_task_surface() {
    let corpus = corpus();
    let datasets = TaskDatasets::build(&corpus);
    let tok = WordTokenizer::fit(datasets.all_texts(), 1);
    for e in datasets.examples.iter().take(200) {
        let ids = tok.encode(&e.output);
        assert_eq!(tok.decode(&ids), e.output, "lossy output tokenization");
        let ids = tok.encode(&e.input);
        assert_eq!(tok.decode(&ids), e.input, "lossy input tokenization");
    }
}

#[test]
fn pretrain_corpus_covers_all_four_mappings_and_knowledge() {
    let corpus = corpus();
    let datasets = TaskDatasets::build(&corpus);
    let mut data = PretrainData::build(&datasets);
    let with_tasks = data.bdc.len();
    assert!(with_tasks > 0);
    data.add_dv_knowledge(&corpus.databases);
    // Knowledge docs contain every database's schema.
    let docs = dv_knowledge_docs(&corpus.databases);
    assert_eq!(
        docs.len(),
        corpus.databases.len()
            + corpus
                .databases
                .iter()
                .map(|d| d.tables.len())
                .sum::<usize>()
    );
    for db in &corpus.databases {
        let name = db.name.to_ascii_lowercase();
        assert!(
            data.mlm.iter().any(|m| m.contains(&name)),
            "no knowledge doc mentions {name}"
        );
    }
}

#[test]
fn split_partitions_are_disjoint_and_exhaustive() {
    let corpus = corpus();
    let datasets = TaskDatasets::build(&corpus);
    for task in Task::ALL {
        let train = datasets.of(task, Split::Train).len();
        let valid = datasets.of(task, Split::Valid).len();
        let test = datasets.of(task, Split::Test).len();
        let total = datasets.examples.iter().filter(|e| e.task == task).count();
        assert_eq!(train + valid + test, total, "{}", task.label());
        assert!(train > test, "{}: train should dominate", task.label());
    }
}

#[test]
fn em_and_text_metrics_agree_on_gold() {
    let corpus = corpus();
    // Gold vs gold: EM exact and BLEU 1.0 for every example.
    for e in corpus.nvbench.iter().take(30) {
        let db = corpus.database(&e.db_name).unwrap();
        let schema = db.schema();
        let q = vql::standardize::parse_standardized(&e.query, &schema).unwrap();
        assert!(vql::compare_queries(&q, &q).exact());
        let b = metrics::sentence_bleu(&e.description, &e.description, 4);
        assert!((b - 1.0).abs() < 1e-9);
    }
}
