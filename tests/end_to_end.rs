//! End-to-end integration: corpus → encoding → pre-training → fine-tuning
//! → decoding → metrics, at smoke scale.

use datavist5_repro::corpus::Split;
use datavist5_repro::datavist5::config::{Scale, Size};
use datavist5_repro::datavist5::data::Task;
use datavist5_repro::datavist5::eval::{eval_text_gen, eval_text_to_vis};
use datavist5_repro::datavist5::zoo::{ModelKind, Regime, Zoo};

/// Tests share the on-disk checkpoint cache; serialize access so parallel
/// test threads do not race directory deletion against training.
static CKPT_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    CKPT_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn fresh_zoo() -> Zoo {
    // Tests must not reuse possibly-stale checkpoints from other runs.
    let _ = std::fs::remove_dir_all("target/datavist5-ckpt/smoke");
    Zoo::new(Scale::Smoke)
}

#[test]
fn datavist5_mft_trains_and_scores_text_to_vis() {
    let _guard = lock();
    let zoo = fresh_zoo();
    let trained = zoo.train_model(ModelKind::DataVisT5(Size::Base, Regime::Mft), None);
    let predictor = zoo.predictor(ModelKind::DataVisT5(Size::Base, Regime::Mft), trained);
    let examples = zoo.datasets.of(Task::TextToVis, Split::Test);
    assert!(!examples.is_empty());
    let scores = eval_text_to_vis(&*predictor, &examples, &zoo.corpus, 6);
    // At smoke scale we only assert the harness produces sane numbers.
    assert!(scores.non_join.n + scores.join.n > 0);
    assert!((0.0..=1.0).contains(&scores.non_join.em));
    assert!((0.0..=1.0).contains(&scores.mean_metric()));

    // The same MFT model also answers a generative task.
    let vis_examples = zoo.datasets.of(Task::VisToText, Split::Test);
    let gen = eval_text_gen(&*predictor, &vis_examples, 4);
    assert!(gen.n > 0);
    assert!((0.0..=1.0).contains(&gen.bleu1));
    assert!((0.0..=1.0).contains(&gen.meteor));
}

#[test]
fn gpt4_simulator_predicts_without_training() {
    let _guard = lock();
    let zoo = fresh_zoo();
    let sim = zoo.gpt4_predictor();
    let examples = zoo.datasets.of(Task::TextToVis, Split::Test);
    let scores = eval_text_to_vis(&sim, &examples, &zoo.corpus, 6);
    assert!(scores.non_join.n + scores.join.n > 0);
    // Retrieval + adaptation should at least predict chart types well
    // occasionally; mostly we assert it emits parseable queries for some
    // examples.
    let pred = datavist5_repro::datavist5::zoo::Predictor::predict(&sim, examples[0]);
    assert!(!pred.is_empty());
}

#[test]
fn seq2vis_lstm_baseline_runs() {
    let _guard = lock();
    let zoo = fresh_zoo();
    let trained = zoo.train_model(ModelKind::Seq2Vis, Some(Task::TextToVis));
    let predictor = zoo.predictor(ModelKind::Seq2Vis, trained);
    let examples = zoo.datasets.of(Task::TextToVis, Split::Test);
    let scores = eval_text_to_vis(&*predictor, &examples, &zoo.corpus, 3);
    assert!(scores.non_join.n + scores.join.n > 0);
}
