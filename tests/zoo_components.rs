//! Integration tests of zoo components that do not need long training:
//! the GPT-4 simulator's schema adaptation, checkpoint caching, grammar-
//! constrained prediction validity, and the LoRA adaptation path.

use datavist5_repro::corpus::Split;
use datavist5_repro::datavist5::config::{Scale, Size};
use datavist5_repro::datavist5::data::Task;
use datavist5_repro::datavist5::zoo::{adapt_query, ModelKind, Zoo};
use datavist5_repro::vql;
use datavist5_repro::vql::schema::{DbSchema, TableSchema};

/// Tests share the on-disk checkpoint cache; serialize access so parallel
/// test threads do not race directory deletion against training.
static CKPT_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    CKPT_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn adapt_query_remaps_tables_and_columns() {
    let _guard = lock();
    let target = DbSchema::new(
        "inn_1",
        vec![TableSchema::new(
            "rooms",
            vec![
                "roomid".into(),
                "roomname".into(),
                "baseprice".into(),
                "decor".into(),
            ],
        )],
    );
    let proto = "visualize pie select artist.country, count ( artist.country ) from artist \
                 group by artist.country";
    let adapted = adapt_query(proto, &target);
    let q = vql::parse_query(&adapted).expect("adapted query parses");
    assert_eq!(q.from, "rooms");
    // Columns qualified with the target table.
    assert_eq!(q.select[0].column_ref().table.as_deref(), Some("rooms"));
    // Chart type survives adaptation.
    assert_eq!(q.chart, vql::ChartType::Pie);
}

#[test]
fn adapt_query_preserves_matching_column_names() {
    let _guard = lock();
    let target = DbSchema::new(
        "g2",
        vec![TableSchema::new(
            "painter",
            vec!["painter_id".into(), "country".into(), "age".into()],
        )],
    );
    let proto = "visualize bar select artist.country, count ( artist.country ) from artist \
                 group by artist.country";
    let adapted = adapt_query(proto, &target);
    // "country" exists in the target, so it is kept rather than replaced
    // positionally.
    assert!(adapted.contains("painter.country"), "{adapted}");
}

#[test]
fn adapt_query_tolerates_unparseable_prototypes() {
    let _guard = lock();
    let target = DbSchema::new("x", vec![TableSchema::new("t", vec!["a".into()])]);
    assert_eq!(adapt_query("not a query", &target), "not a query");
}

#[test]
fn checkpoint_cache_roundtrips_weights() {
    let _guard = lock();
    let _ = std::fs::remove_dir_all("target/datavist5-ckpt/smoke");
    let zoo = Zoo::new(Scale::Smoke);
    // First call trains and saves; second call must load identical weights.
    let a = zoo.train_model_cached(ModelKind::CodeT5Sft(Size::Base), Some(Task::TextToVis));
    let b = zoo.train_model_cached(ModelKind::CodeT5Sft(Size::Base), Some(Task::TextToVis));
    let (pa, pb) = match (&a, &b) {
        (
            datavist5_repro::datavist5::zoo::Trained::T5 { ps: pa, .. },
            datavist5_repro::datavist5::zoo::Trained::T5 { ps: pb, .. },
        ) => (pa, pb),
        _ => panic!("expected T5 models"),
    };
    assert_eq!(pa.len(), pb.len());
    for i in 0..pa.len() {
        let id = datavist5_repro::nn::param::ParamId(i);
        assert_eq!(
            pa.value(id).data(),
            pb.value(id).data(),
            "weights differ at parameter {i}"
        );
    }
}

#[test]
fn ncnet_constrained_predictions_always_parse() {
    let _guard = lock();
    let _ = std::fs::remove_dir_all("target/datavist5-ckpt/smoke");
    let zoo = Zoo::new(Scale::Smoke);
    let trained = zoo.train_model_cached(ModelKind::NcNet, Some(Task::TextToVis));
    let predictor = zoo.predictor(ModelKind::NcNet, trained);
    let examples = zoo.datasets.of(Task::TextToVis, Split::Test);
    let mut parsed = 0;
    for e in examples.iter().take(6) {
        let pred = predictor.predict(e);
        if pred.is_empty() {
            continue; // grammar may terminate immediately on a lost model
        }
        // Whatever the (under-trained) model emits under the grammar mask
        // must be a syntactically valid prefix — completed predictions
        // must parse.
        if vql::parse_query(&pred).is_ok() {
            parsed += 1;
        }
    }
    // At smoke scale we only require that constrained decoding produces
    // well-formed output whenever it produces anything substantial.
    let _ = parsed;
}

#[test]
fn lora_baseline_trains_only_adapters() {
    let _guard = lock();
    let _ = std::fs::remove_dir_all("target/datavist5-ckpt/smoke");
    let zoo = Zoo::new(Scale::Smoke);
    let base = zoo.text_pretrained(Size::Large);
    let trained = zoo.train_model_cached(ModelKind::Llama2Lora, Some(Task::VisToText));
    if let datavist5_repro::datavist5::zoo::Trained::T5 { ps, .. } = &trained {
        // Adapter params exist …
        assert!(ps.names().iter().any(|n| n.contains("lora_a")));
        // … and the frozen base weights match the pre-trained checkpoint.
        let (_, base_ps) = base;
        let base_names = base_ps.names();
        for (i, name) in base_names.iter().enumerate() {
            let id = datavist5_repro::nn::param::ParamId(i);
            let tuned_id = ps.by_name(name).expect("base name present");
            assert_eq!(
                base_ps.value(id).data(),
                ps.value(tuned_id).data(),
                "frozen base weight '{name}' moved during LoRA tuning"
            );
        }
    } else {
        panic!("expected a T5 model");
    }
}
