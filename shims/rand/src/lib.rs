//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal implementation of exactly the surface it consumes:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, `Rng::{gen_bool,
//! gen_range}` over integer and float ranges, and
//! `seq::SliceRandom::shuffle`. The generator is SplitMix64, which is
//! statistically sound for corpus synthesis but is NOT the upstream
//! ChaCha-based `StdRng`: streams differ from real `rand` for the same
//! seed, and nothing here is cryptographically secure.

#![forbid(unsafe_code)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    /// SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Pre-advance once so seed 0 does not emit a low-entropy
            // first word.
            let mut rng = StdRng { state: seed };
            let _ = crate::RngCore::next_u64(&mut rng);
            rng
        }
    }

    impl StdRng {
        /// Exposes the raw generator state (shim extension, not upstream
        /// API): checkpointing serializes this word so a resumed training
        /// run continues the exact random stream.
        pub fn state(&self) -> u64 {
            self.state
        }

        /// Rebuilds a generator from a state word captured by
        /// [`StdRng::state`]. Unlike `seed_from_u64` this does NOT
        /// pre-advance: the next draw is exactly the one the captured
        /// generator would have produced.
        pub fn from_state(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of [0,1]");
        // 53 uniform mantissa bits, as upstream does.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Samples uniformly from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod distributions {
    pub mod uniform {
        use crate::RngCore;

        /// A range from which a uniform value can be drawn.
        pub trait SampleRange<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        fn sample_span<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
            debug_assert!(span > 0);
            // Widening multiply avoids modulo bias for the spans used
            // here (all far below 2^64).
            if span <= u64::MAX as u128 {
                ((rng.next_u64() as u128 * span) >> 64) as u128
            } else {
                rng.next_u64() as u128 % span
            }
        }

        macro_rules! int_range_impls {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for core::ops::Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "empty gen_range");
                        let span = (self.end as i128 - self.start as i128) as u128;
                        (self.start as i128 + sample_span(rng, span) as i128) as $t
                    }
                }
                impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "empty gen_range");
                        let span = (hi as i128 - lo as i128) as u128 + 1;
                        (lo as i128 + sample_span(rng, span) as i128) as $t
                    }
                }
            )*};
        }
        int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        macro_rules! float_range_impls {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for core::ops::Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "empty gen_range");
                        let unit = ((rng.next_u64() >> 11) as f64)
                            * (1.0 / (1u64 << 53) as f64);
                        self.start + (unit as $t) * (self.end - self.start)
                    }
                }
            )*};
        }
        float_range_impls!(f32, f64);
    }
}

pub mod seq {
    use crate::RngCore;

    /// Slice extension methods; only `shuffle` is provided.
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2_000 {
            let v = rng.gen_range(3..9u8);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(1.5f32..2.5);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut xs: Vec<u32> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
