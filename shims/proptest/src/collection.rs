//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRunner;

/// Length specification for collection strategies: inclusive lower
/// bound, exclusive upper bound.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { lo: *r.start(), hi: *r.end() + 1 }
    }
}

/// Generates `Vec`s whose length is drawn from `size` and whose
/// elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
        let span = self.size.hi - self.size.lo;
        let len = self.size.lo + if span > 0 { runner.below(span) } else { 0 };
        (0..len).map(|_| self.element.generate(runner)).collect()
    }
}
