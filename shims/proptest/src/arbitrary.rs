//! `any::<T>()` strategies for types with a canonical distribution.

use crate::strategy::Strategy;
use crate::test_runner::TestRunner;

/// Types with a default strategy covering their whole domain.
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;

    fn arbitrary() -> Self::Strategy;
}

/// The default strategy for `A`.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn generate(&self, runner: &mut TestRunner) -> bool {
        runner.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! any_int {
    ($($t:ty => $name:ident),*) => {$(
        pub struct $name;

        impl Strategy for $name {
            type Value = $t;

            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.next_u64() as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = $name;

            fn arbitrary() -> $name {
                $name
            }
        }
    )*};
}
any_int!(u8 => AnyU8, u16 => AnyU16, u32 => AnyU32, u64 => AnyU64, usize => AnyUsize,
         i8 => AnyI8, i16 => AnyI16, i32 => AnyI32, i64 => AnyI64, isize => AnyIsize);
