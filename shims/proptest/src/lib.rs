//! Offline stand-in for `proptest` (the subset this workspace uses).
//!
//! Same programming model as upstream — strategies compose into random
//! value generators, `proptest!` drives each property over many cases,
//! `prop_assert*` report failures — with two deliberate simplifications:
//! failing cases are **not shrunk** (the failing input is reported
//! as-is), and generation is deterministic per test name so failures
//! reproduce without a persistence file. The case count defaults to 64
//! and is overridable via `PROPTEST_CASES`.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod option;
mod regex;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestRunner};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
    };

    /// Namespace mirror of upstream's `prop::` module tree.
    pub mod prop {
        pub use crate::{collection, option, sample};
    }
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies; each runs for the configured number of cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::test_runner::cases();
                let mut runner = $crate::test_runner::TestRunner::new(stringify!($name));
                for case in 0..cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut runner);
                    )+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        ::std::panic!(
                            "proptest '{}' failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            cases,
                            e
                        );
                    }
                }
            }
        )+
    };
}

/// Defines a named strategy function from component strategies, as
/// upstream's `prop_compose!` does. Only the zero-outer-argument form is
/// supported (the only form this workspace uses).
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident ( ) (
            $( $arg:ident in $strat:expr ),+ $(,)?
        ) -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name() -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::Map::new(
                ( $( $strat, )+ ),
                move |( $( $arg, )+ )| $body,
            )
        }
    };
}

/// Picks uniformly among several strategies producing the same value
/// type. (Upstream's weighted `weight => strategy` form is unsupported.)
#[macro_export]
macro_rules! prop_oneof {
    ($( $strat:expr ),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}

/// Asserts inside a proptest body, failing the current case (not the
/// whole process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::new(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs == rhs, "{:?} != {:?}", lhs, rhs);
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs == rhs, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs != rhs, "{:?} == {:?}", lhs, rhs);
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs != rhs, $($fmt)+);
    }};
}
