//! The `Strategy` trait and core combinators.

use crate::test_runner::TestRunner;

/// A recipe for generating random values of one type.
///
/// Object-safe core (`generate`) plus `where Self: Sized` combinators,
/// so `Box<dyn Strategy<Value = V>>` works for `prop_oneof!`.
pub trait Strategy {
    type Value;

    fn generate(&self, runner: &mut TestRunner) -> Self::Value;

    /// Transforms generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map::new(self, f)
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

/// The `prop_map` combinator.
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, F> Map<S, F> {
    /// The `O` parameter pins the closure's argument type to
    /// `S::Value` at construction, so closures written in
    /// `prop_compose!` infer their tuple pattern types.
    pub fn new<O>(source: S, f: F) -> Self
    where
        F: Fn(S::Value) -> O,
    {
        Map { source, f }
    }
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.source.generate(runner))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, runner: &mut TestRunner) -> V {
        self.0.generate(runner)
    }
}

/// Uniform choice among same-valued strategies (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, runner: &mut TestRunner) -> V {
        let idx = runner.below(self.options.len());
        self.options[idx].generate(runner)
    }
}

/// String-literal regex strategies: `"[a-z]{1,8}"` generates matching
/// strings, as upstream's `&str` strategy does.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, runner: &mut TestRunner) -> String {
        crate::regex::generate(self, runner)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (runner.next_u64() as u128 * span) >> 64;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, runner: &mut TestRunner) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (runner.next_u64() as u128 * span) >> 64;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (runner.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                ($( self.$idx.generate(runner), )+)
            }
        }
    };
}
tuple_strategy!(A 0);
tuple_strategy!(A 0, B 1);
tuple_strategy!(A 0, B 1, C 2);
tuple_strategy!(A 0, B 1, C 2, D 3);
tuple_strategy!(A 0, B 1, C 2, D 3, E 4);
tuple_strategy!(A 0, B 1, C 2, D 3, E 4, F 5);
tuple_strategy!(A 0, B 1, C 2, D 3, E 4, F 5, G 6);
tuple_strategy!(A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
