//! Deterministic case driver for the proptest shim.

use std::fmt;

/// Number of cases each property runs, from `PROPTEST_CASES` or 64.
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(64)
}

/// Per-test random source. Seeded from the test name so every run of a
/// given property sees the same inputs (failures reproduce without a
/// regression file).
pub struct TestRunner {
    state: u64,
}

impl TestRunner {
    pub fn new(name: &str) -> Self {
        // FNV-1a over the test name.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner { state: h | 1 }
    }

    pub fn next_u64(&mut self) -> u64 {
        // SplitMix64.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

/// A failed property case (carried to the driver, which panics).
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    pub fn new(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}
