//! Option strategies (`prop::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRunner;

/// Yields `None` a quarter of the time and `Some` of the inner
/// strategy's value otherwise (upstream's default weighting).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, runner: &mut TestRunner) -> Option<S::Value> {
        if runner.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(runner))
        }
    }
}
