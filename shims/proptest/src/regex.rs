//! String generation from the tiny regex subset used as proptest
//! strategies in this workspace: literal characters, `[...]` classes
//! with ranges, `.` (printable ASCII), and `{n}` / `{n,m}` repetition.

use crate::test_runner::TestRunner;

struct Atom {
    /// Inclusive character ranges this atom may produce.
    ranges: Vec<(char, char)>,
    min: usize,
    max: usize,
}

/// Generates one string matching `pattern`.
pub fn generate(pattern: &str, runner: &mut TestRunner) -> String {
    let atoms = parse(pattern);
    let mut out = String::new();
    for atom in &atoms {
        let n = atom.min + runner.below(atom.max - atom.min + 1);
        let weights: Vec<u32> = atom
            .ranges
            .iter()
            .map(|&(lo, hi)| hi as u32 - lo as u32 + 1)
            .collect();
        let total: u32 = weights.iter().sum();
        for _ in 0..n {
            let mut pick = runner.below(total as usize) as u32;
            for (&(lo, _), &w) in atom.ranges.iter().zip(&weights) {
                if pick < w {
                    out.push(char::from_u32(lo as u32 + pick).expect("ascii range"));
                    break;
                }
                pick -= w;
            }
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let ranges = match chars[i] {
            '[' => {
                let mut ranges = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    let lo = chars[i];
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((lo, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in regex '{pattern}'");
                i += 1; // ']'
                ranges
            }
            '.' => {
                i += 1;
                vec![(' ', '~')]
            }
            '\\' => {
                assert!(i + 1 < chars.len(), "dangling escape in regex '{pattern}'");
                i += 2;
                vec![(chars[i - 1], chars[i - 1])]
            }
            c => {
                i += 1;
                vec![(c, c)]
            }
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unterminated quantifier in regex '{pattern}'"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("quantifier lower bound"),
                    hi.trim().parse().expect("quantifier upper bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("quantifier count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "bad quantifier in regex '{pattern}'");
        atoms.push(Atom { ranges, min, max });
    }
    atoms
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRunner;

    fn gen(pattern: &str) -> String {
        let mut runner = TestRunner::new(pattern);
        generate(pattern, &mut runner)
    }

    #[test]
    fn class_with_quantifier_respects_bounds() {
        for _ in 0..50 {
            let s = gen("[a-z]{1,7}");
            assert!((1..=7).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn concatenated_atoms_compose() {
        let mut runner = TestRunner::new("concat");
        for _ in 0..50 {
            let s = generate("[a-z][a-z0-9_.]{0,10}", &mut runner);
            assert!(!s.is_empty() && s.len() <= 11);
            assert!(s.starts_with(|c: char| c.is_ascii_lowercase()));
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '.'));
        }
    }

    #[test]
    fn dot_emits_printable_ascii() {
        let mut runner = TestRunner::new("dot");
        for _ in 0..50 {
            let s = generate(".{0,200}", &mut runner);
            assert!(s.len() <= 200);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn exact_count_is_exact() {
        assert_eq!(gen("[A-Z]{12}").len(), 12);
    }
}
