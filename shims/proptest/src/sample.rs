//! Sampling strategies (`prop::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRunner;

/// Picks uniformly from a fixed set of options.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select needs at least one option");
    Select { options }
}

pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, runner: &mut TestRunner) -> T {
        self.options[runner.below(self.options.len())].clone()
    }
}
