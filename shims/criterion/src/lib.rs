//! Offline stand-in for `criterion` (the subset this workspace uses):
//! `Criterion::bench_function`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros. Instead of upstream's
//! statistical analysis, each benchmark runs `sample_size` timed
//! iterations after one warmup and prints the mean time per iteration.

#![forbid(unsafe_code)]

use std::time::Instant;

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iterations: self.sample_size as u64,
            elapsed_ns: 0,
        };
        f(&mut b);
        if b.iterations > 0 {
            println!(
                "bench {id:<40} {:>12.0} ns/iter",
                b.elapsed_ns as f64 / b.iterations as f64
            );
        }
        self
    }
}

pub struct Bencher {
    iterations: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Times `routine` over the configured iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        std::hint::black_box(routine()); // warmup, untimed
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

/// Re-export for parity with upstream's `criterion::black_box`.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        #[allow(dead_code)]
        fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        #[allow(dead_code)]
        fn main() {
            $( $group(); )+
        }
    };
}
