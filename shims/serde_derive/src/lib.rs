//! Offline stand-in for `serde_derive`: a `Serialize` derive for plain
//! structs with named fields (optionally carrying lifetime/type
//! parameters without bounds). The generated impl targets the sibling
//! `serde` shim's single-method trait, appending a compact JSON object
//! with fields in declaration order.
//!
//! The input is parsed directly from the token stream — no `syn`/`quote`
//! (unavailable offline). Enums, tuple structs, and field attributes
//! such as `#[serde(rename)]` are intentionally unsupported and panic at
//! compile time so misuse is loud.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let mut iter = input.into_iter().peekable();
    let mut name = String::new();
    let mut generics = String::new();
    let mut fields: Vec<String> = Vec::new();

    while let Some(tt) = iter.next() {
        match tt {
            // Skip outer attributes (`#[...]`, doc comments).
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next();
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                name = match iter.next() {
                    Some(TokenTree::Ident(n)) => n.to_string(),
                    other => panic!("derive(Serialize): expected struct name, got {other:?}"),
                };
                // Collect generic parameter tokens verbatim until the
                // field block. Bounds/where clauses are out of scope.
                for tt2 in iter.by_ref() {
                    match tt2 {
                        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                            fields = parse_field_names(g.stream());
                            break;
                        }
                        TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                            panic!("derive(Serialize): tuple structs are unsupported");
                        }
                        TokenTree::Punct(p) if p.as_char() == ';' => {
                            panic!("derive(Serialize): unit structs are unsupported");
                        }
                        // Joint punctuation (the `'` of a lifetime, `::`)
                        // must stay glued to the next token to re-lex.
                        TokenTree::Punct(p) => {
                            generics.push(p.as_char());
                            if p.spacing() == proc_macro::Spacing::Alone {
                                generics.push(' ');
                            }
                        }
                        other => {
                            generics.push_str(&other.to_string());
                            generics.push(' ');
                        }
                    }
                }
            }
            TokenTree::Ident(id) if id.to_string() == "enum" => {
                panic!("derive(Serialize): enums are unsupported");
            }
            _ => {}
        }
    }
    assert!(!name.is_empty(), "derive(Serialize): no struct found");

    let mut body = String::from("out.push('{');\n");
    for (i, field) in fields.iter().enumerate() {
        if i > 0 {
            body.push_str("out.push(',');\n");
        }
        // Field names are Rust identifiers: safe to emit unescaped.
        body.push_str(&format!(
            "out.push_str(\"\\\"{field}\\\":\");\n\
             ::serde::Serialize::serialize_json(&self.{field}, out);\n"
        ));
    }
    body.push_str("out.push('}');");

    let generated = format!(
        "impl {generics} ::serde::Serialize for {name} {generics} {{\n\
             fn serialize_json(&self, out: &mut ::std::string::String) {{\n\
                 {body}\n\
             }}\n\
         }}"
    );
    generated
        .parse()
        .expect("derive(Serialize): generated impl failed to parse")
}

/// Extracts field names from the contents of a struct's brace block.
fn parse_field_names(stream: TokenStream) -> Vec<String> {
    let mut names = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        // Skip field attributes and doc comments.
        while let Some(TokenTree::Punct(p)) = iter.peek() {
            if p.as_char() == '#' {
                iter.next();
                iter.next(); // the bracketed attribute group
            } else {
                break;
            }
        }
        let Some(tt) = iter.next() else { break };
        let mut ident = match tt {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("derive(Serialize): expected field name, got {other:?}"),
        };
        if ident == "pub" {
            // Visibility qualifier: `pub` or `pub(...)`.
            if let Some(TokenTree::Group(g)) = iter.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    iter.next();
                }
            }
            ident = match iter.next() {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("derive(Serialize): expected field name, got {other:?}"),
            };
        }
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("derive(Serialize): expected ':' after {ident}, got {other:?}"),
        }
        names.push(ident);
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        for tt in iter.by_ref() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
    }
    names
}
