//! Offline stand-in for `serde_json` (the subset this workspace uses):
//! a `Value` model with insertion-ordered object maps, compact
//! serialization matching upstream's output for the types we emit, a
//! recursive-descent parser behind `from_str`, the `json!` macro, and
//! `to_writer` over the `serde` shim's `Serialize` trait.

#![forbid(unsafe_code)]

use std::fmt;

mod parse;

pub use parse::from_str;

/// A JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

/// A JSON number: integers and floats kept apart so integers print
/// without a decimal point and floats keep one.
#[derive(Clone, Copy, Debug)]
pub enum Number {
    Int(i64),
    Float(f64),
}

impl Number {
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::Int(n) => n as f64,
            Number::Float(f) => f,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (*self, *other) {
            (Number::Int(a), Number::Int(b)) => a == b,
            (a, b) => a.as_f64() == b.as_f64(),
        }
    }
}

/// An insertion-ordered string-keyed map (upstream's `preserve_order`
/// behaviour, which keeps diagnostics readable).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Map<K = String, V = Value> {
    entries: Vec<(K, V)>,
}

impl<K: PartialEq, V> Map<K, V> {
    pub fn new() -> Self {
        Map { entries: Vec::new() }
    }

    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            return Some(std::mem::replace(&mut slot.1, value));
        }
        self.entries.push((key, value));
        None
    }

    pub fn get<Q: ?Sized>(&self, key: &Q) -> Option<&V>
    where
        K: std::borrow::Borrow<Q>,
        Q: PartialEq,
    {
        self.entries
            .iter()
            .find(|(k, _)| k.borrow() == key)
            .map(|(_, v)| v)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl Value {
    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::Int(n)) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        match self {
            Value::Object(m) => m.get(key).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl serde::Serialize for Value {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => b.serialize_json(out),
            Value::Number(Number::Int(n)) => n.serialize_json(out),
            Value::Number(Number::Float(f)) => f.serialize_json(out),
            Value::String(s) => serde::escape_str(out, s),
            Value::Array(a) => {
                out.push('[');
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.serialize_json(out);
                }
                out.push(']');
            }
            Value::Object(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    serde::escape_str(out, k);
                    out.push(':');
                    v.serialize_json(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&to_string_value(self))
    }
}

fn to_string_value(v: &Value) -> String {
    let mut out = String::new();
    serde::Serialize::serialize_json(v, &mut out);
    out
}

/// Serializes a value to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Serializes a value to an indented JSON string (two-space indent,
/// matching upstream's pretty printer).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut compact = String::new();
    value.serialize_json(&mut compact);
    // Pretty-print by re-parsing the compact form: correct for every
    // value the Serialize shim can emit, and keeps the trait single-method.
    let v = from_str(&compact)?;
    let mut out = String::new();
    pretty(&v, 0, &mut out);
    Ok(out)
}

fn pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let inner = "  ".repeat(indent + 1);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&inner);
                pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(m) if !m.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&inner);
                serde::escape_str(out, k);
                out.push_str(": ");
                pretty(val, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => serde::Serialize::serialize_json(other, out),
    }
}

/// Serializes a value as compact JSON to a writer.
pub fn to_writer<W: std::io::Write, T: serde::Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> std::io::Result<()> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    writer.write_all(out.as_bytes())
}

/// A parse error with byte position context.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

// --- Value conversions backing the `json!` macro -------------------------

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<&String> for Value {
    fn from(s: &String) -> Value {
        Value::String(s.clone())
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

macro_rules! from_int_impls {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Value {
                Value::Number(Number::Int(n as i64))
            }
        }
        impl From<&$t> for Value {
            fn from(n: &$t) -> Value {
                Value::Number(Number::Int(*n as i64))
            }
        }
    )*};
}
from_int_impls!(u8, u16, u32, i8, i16, i32, i64, usize);

macro_rules! from_float_impls {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(f: $t) -> Value {
                Value::Number(Number::Float(f as f64))
            }
        }
        impl From<&$t> for Value {
            fn from(f: &$t) -> Value {
                Value::Number(Number::Float(*f as f64))
            }
        }
    )*};
}
from_float_impls!(f32, f64);

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(xs: Vec<T>) -> Value {
        Value::Array(xs.into_iter().map(Into::into).collect())
    }
}

impl From<Map> for Value {
    fn from(m: Map) -> Value {
        Value::Object(m)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(o: Option<T>) -> Value {
        o.map(Into::into).unwrap_or(Value::Null)
    }
}

// --- json! macro ---------------------------------------------------------

/// Builds a [`Value`] from JSON-like syntax. Object values may be any
/// Rust expression convertible into `Value`, or nested `{...}`/`[...]`
/// literals.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($body:tt)* }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $crate::json_object_munch!(map $($body)*);
        $crate::Value::Object(map)
    }};
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ($other:expr) => { $crate::Value::from($other) };
}

/// Internal: munches `"key": value, ...` pairs into `$map`.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_munch {
    ($map:ident) => {};
    ($map:ident ,) => {};
    ($map:ident $key:literal : $($rest:tt)*) => {
        $crate::json_value_munch!($map $key () $($rest)*);
    };
}

/// Internal: accumulates value tokens until a top-level comma.
#[doc(hidden)]
#[macro_export]
macro_rules! json_value_munch {
    ($map:ident $key:tt ($($val:tt)+)) => {
        $map.insert($key.to_string(), $crate::json!($($val)+));
    };
    ($map:ident $key:tt ($($val:tt)+) , $($rest:tt)*) => {
        $map.insert($key.to_string(), $crate::json!($($val)+));
        $crate::json_object_munch!($map $($rest)*);
    };
    ($map:ident $key:tt ($($val:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_value_munch!($map $key ($($val)* $next) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_nested_objects() {
        let field = "count";
        let v = json!({
            "mark": "bar",
            "data": {"values": vec![json!(1u8), json!("x")]},
            "field": format!("{field}_y"),
            "n": 2.0f64,
        });
        assert_eq!(v["mark"], "bar");
        assert_eq!(v["data"]["values"].as_array().unwrap().len(), 2);
        assert_eq!(v["field"], "count_y");
        assert_eq!(to_string(&v).unwrap().contains("\"n\":2.0"), true);
    }

    #[test]
    fn roundtrip_through_text() {
        let v = json!({"a": [1, 2.5, "s"], "b": null, "c": true});
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn object_maps_preserve_insertion_order() {
        let mut m = Map::new();
        m.insert("z".to_string(), json!(1));
        m.insert("a".to_string(), json!(2));
        assert_eq!(to_string(&Value::Object(m)).unwrap(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn missing_keys_index_to_null() {
        let v = json!({"a": 1});
        assert!(v["nope"].is_null());
        assert!(v["a"]["deeper"].is_null());
    }
}
