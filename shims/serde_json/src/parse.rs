//! Recursive-descent JSON parser for the shim's [`Value`] model.

use crate::{Error, Map, Number, Value};

/// Parses a complete JSON document from a string.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, Error> {
        let b = self
            .peek()
            .ok_or_else(|| Error::new("unexpected end of input"))?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        let got = self.bump()?;
        if got != b {
            return Err(Error::new(format!(
                "expected '{}' at byte {}, found '{}'",
                b as char,
                self.pos - 1,
                got as char
            )));
        }
        Ok(())
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(Error::new(format!(
                "unexpected character '{}' at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Ok(Value::Object(map)),
                c => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' in object, found '{}'",
                        c as char
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Ok(Value::Array(items)),
                c => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' in array, found '{}'",
                        c as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            // Fast-path a run of plain UTF-8 bytes.
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            if self.pos > start {
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?,
                );
            }
            match self.bump()? {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{08}'),
                    b'f' => out.push('\u{0c}'),
                    b'u' => {
                        let cp = self.hex4()?;
                        // Surrogate pairs: combine a high surrogate with
                        // the following \uXXXX low surrogate.
                        let ch = if (0xD800..0xDC00).contains(&cp) {
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let lo = self.hex4()?;
                            let combined =
                                0x10000 + ((cp - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                            char::from_u32(combined)
                        } else {
                            char::from_u32(cp)
                        };
                        out.push(ch.ok_or_else(|| Error::new("invalid \\u escape"))?);
                    }
                    c => {
                        return Err(Error::new(format!(
                            "invalid escape '\\{}'",
                            c as char
                        )))
                    }
                },
                c if c < 0x20 => {
                    return Err(Error::new("raw control character in string"))
                }
                _ => unreachable!("fast path consumes plain bytes"),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self.bump()?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| Error::new("invalid hex digit in \\u escape"))?;
            v = (v << 4) | d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII");
        if is_float {
            text.parse::<f64>()
                .map(|f| Value::Number(Number::Float(f)))
                .map_err(|_| Error::new(format!("invalid number '{text}'")))
        } else {
            // Integers overflowing i64 fall back to f64, as upstream
            // does for u64-range values we never produce.
            text.parse::<i64>()
                .map(|n| Value::Number(Number::Int(n)))
                .or_else(|_| {
                    text.parse::<f64>().map(|f| Value::Number(Number::Float(f)))
                })
                .map_err(|_| Error::new(format!("invalid number '{text}'")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(from_str("42").unwrap(), Value::Number(Number::Int(42)));
        assert_eq!(
            from_str("-2.5e1").unwrap(),
            Value::Number(Number::Float(-25.0))
        );
        assert_eq!(from_str("\"hi\\n\"").unwrap(), Value::String("hi\n".into()));
        assert_eq!(from_str("null").unwrap(), Value::Null);
    }

    #[test]
    fn parses_structures_with_whitespace() {
        let v = from_str(" { \"a\" : [ 1 , { \"b\" : false } ] } ").unwrap();
        assert_eq!(v["a"][0], Value::Number(Number::Int(1)));
        assert_eq!(v["a"][1]["b"], Value::Bool(false));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str("1 2").is_err());
        assert!(from_str("{\"a\":}").is_err());
        assert!(from_str("").is_err());
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(
            from_str("\"\\u00e9\\ud83d\\ude00\"").unwrap(),
            Value::String("é😀".into())
        );
    }
}
